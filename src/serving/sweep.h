#pragma once
// Deterministic parallel sweep driver for serving traffic studies.
//
// A sweep is a flat list of (scenario, request trace) points — typically
// the cross product of arrival rate x model x chip count x eviction
// policy x admission policy x KV block size x prefix caching — run on a
// small worker pool.  Every point is an independent deterministic
// simulation, so parallel execution is embarrassingly safe; the driver
// guarantees:
//
//   * DETERMINISTIC GRID ORDER — results[i] always corresponds to
//     points[i], whatever order the workers finished in.
//   * BIT-IDENTICAL METRICS — each point's ServingMetrics are identical to
//     a serial (threads=1) run, including cost-cache hit/miss counters
//     (StepCostCache counts against its run-local view; the shared store
//     only avoids recomputation).  The only exceptions are the wall-clock
//     fields sim_wall_seconds / steps_per_second.
//
// Points with the same (chip config, model, bucket) signature share one
// SharedStepCostCache store, so a sweep stops re-simulating identical
// per-layer shapes across its points.  Thread count comes from
// SweepOptions::threads, the CIMTPU_SWEEP_THREADS environment variable, or
// std::thread::hardware_concurrency(), in that precedence order.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serving/serving_sim.h"

namespace cimtpu::serving {

struct SweepPoint;

/// Canonical signature of one sweep point: every scenario / scheduler /
/// fault / cluster field that can change simulated metrics, spelled out as
/// a field-by-field string (round-trip float precision), plus a content
/// hash of the request trace.  Two points with equal signatures simulate
/// to bit-identical metrics (wall-clock fields aside) — the contract the
/// sweep result memo rests on.  Anything that feeds the engine must land
/// here; the trace config is deliberately EXCLUDED because traced points
/// bypass the memo entirely (they exist for their file output).
std::string sweep_point_signature(const SweepPoint& point);

/// FNV-1a 64 over `signature` — the memo's bucket key.
std::uint64_t sweep_signature_hash(const std::string& signature);

/// Cross-sweep result memo, mirroring SharedStepCostCache one level up:
/// where the cost cache deduplicates per-layer shapes WITHIN runs, this
/// store deduplicates whole runs ACROSS sweeps.  Keyed on the signature's
/// 64-bit hash with full-signature equality confirmation on every hit, so
/// a hash collision can never serve the wrong point's metrics.
/// Thread-safe; entries are immutable once stored (first writer wins —
/// identical signatures produce identical metrics, so a racing duplicate
/// put is harmless).  Off by default: attach one via
/// SweepOptions::result_store.
class SharedSweepResultStore {
 public:
  /// Copies the memoized metrics for `signature` into `out` and returns
  /// true, or returns false when absent.  Counts a hit or miss.
  bool try_get(const std::string& signature, ServingMetrics* out);

  /// Stores `metrics` under `signature` (no-op if already present).
  void put(const std::string& signature, const ServingMetrics& metrics);

  std::size_t size() const;
  std::int64_t hits() const;
  std::int64_t misses() const;

 private:
  struct Entry {
    std::string signature;  ///< full string: hash-collision confirmation
    ServingMetrics metrics;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

struct SweepOptions {
  /// Worker threads.  <= 0: use CIMTPU_SWEEP_THREADS if set, else
  /// hardware_concurrency.  Clamped to the point count.
  int threads = 0;
  /// Worker PROCESSES (POSIX only).  <= 0: use CIMTPU_SWEEP_PROCESSES if
  /// set, else 1 (in-process — the default path).  > 1 forks that many
  /// children, each simulating a round-robin slice of the grid serially
  /// and streaming binary metrics (serving/metrics_codec.h) back over a
  /// pipe; results land in grid order and are bit-identical to a serial
  /// run (wall-clock fields aside).  Fork isolation means children cannot
  /// share a step-cost cache or result memo with each other — each child
  /// warms its own — so processes trade cache reuse for true parallelism;
  /// `threads` is ignored on this path.  Clamped to the point count.
  int processes = 0;
  /// Share computed step costs across points with the same cost signature.
  /// Never changes metrics, only wall-clock.
  bool share_cost_cache = true;
  /// Optional caller-owned cache (must outlive run_sweep): lets SEPARATE
  /// sweeps over the same deployments reuse each other's computed costs.
  /// nullptr -> one internal cache per run_sweep call.  Ignored when
  /// share_cost_cache is false.
  SharedStepCostCache* shared_cache = nullptr;
  /// Force event tracing and time-series sampling OFF for every point,
  /// whatever the scenarios say — the "sweeps stay fast" override for
  /// grids built from a traced base scenario.  Metrics are bit-identical
  /// either way (the tracing contract); this only saves event buffers and
  /// file output.
  bool force_trace_off = false;
  /// Optional caller-owned whole-run result memo (must outlive run_sweep):
  /// points whose canonical signature (sweep_point_signature) was already
  /// simulated — in this sweep or an earlier one sharing the store — reuse
  /// the stored ServingMetrics instead of re-simulating.  Deterministic
  /// runs make the reused metrics bit-identical to a fresh simulation
  /// (wall-clock fields carry the ORIGINAL run's timings — the same
  /// exemption golden pins already grant).  Points that trace events or
  /// sample time series (after force_trace_off) bypass the memo: they run
  /// for their file output.  nullptr (default) = memoization off.
  SharedSweepResultStore* result_store = nullptr;
};

/// Resolves the effective worker count (see SweepOptions::threads).
int resolve_sweep_threads(int requested, std::size_t num_points);

/// Resolves the effective process count (see SweepOptions::processes).
/// Unlike threads, the default is 1 — multi-process fan-out is opt-in.
int resolve_sweep_processes(int requested, std::size_t num_points);

/// One sweep point: a deployment plus the (non-owning) trace it replays.
/// The trace must outlive run_sweep; points may share traces.  `label`
/// identifies the point in failure messages.
///
/// `replicas` > 0 makes the point a CLUSTER cell (serving/cluster.h): the
/// scenario becomes the per-replica prototype (its chips /
/// tensor_parallel_ways apply to EVERY replica), requests route through
/// `router_policy`, and the cell's metrics are the flattened cluster
/// rollup.  0 (the default) is the single-engine path, bit-identical to
/// pre-cluster sweeps.
struct SweepPoint {
  std::string label;
  ServingScenario scenario;
  const std::vector<Request>* requests = nullptr;
  int replicas = 0;
  std::string router_policy = "round_robin";
  bool disaggregated = false;
  int prefill_replicas = 1;  ///< disaggregated cells only
};

/// Runs all points and returns their metrics in point order.  A point that
/// throws (e.g. an unservable request under the configured KV budget)
/// re-throws from here, prefixed with the point's label — the first
/// failing point in grid order wins, whatever order the workers ran in.
std::vector<ServingMetrics> run_sweep(const std::vector<SweepPoint>& points,
                                      const SweepOptions& options = {});

/// Declarative grid: the cross product of the seven axes, expanded with
/// arrival rate outermost and prefix caching innermost (deterministic
/// order).  One request trace is generated per arrival rate and shared by
/// every point at that rate, so models/chips/policies compare on
/// identical traffic.
struct ServingSweep {
  std::vector<double> arrival_rates;
  std::vector<models::TransformerConfig> models;
  std::vector<int> chip_counts;
  std::vector<EvictionPolicy> policies;
  /// Admission-policy registry names (serving/admission_policy.h).  The
  /// default single-"fifo" axis keeps pre-existing grids unchanged; any
  /// per-policy knobs (aging rate, WFQ tenant shares) come from
  /// `base.scheduler.admission` — only the policy NAME is overridden per
  /// cell.
  std::vector<std::string> admission_policies = {"fifo"};
  /// Paged-KV axes.  The 0 / -1 sentinels mean "inherit the base
  /// scenario's value", so pre-existing grids expand unchanged; explicit
  /// values override SchedulerConfig::kv_block_tokens /
  /// enable_prefix_cache per cell (prefix_caching: 0 = off, 1 = on).
  std::vector<std::int64_t> kv_block_tokens = {0};
  std::vector<int> prefix_caching = {-1};

  /// Resilience axes (serving/fault.h).  `fault_rates` scales the base
  /// scenario's three fault-process rates per cell (0 disables the
  /// subsystem for that cell); `fault_recovery` overrides
  /// FaultConfig::recovery_enabled (0 = off, 1 = on).  The -1 sentinels
  /// inherit the base fault config untouched, so pre-existing grids —
  /// and their labels — expand unchanged.
  std::vector<double> fault_rates = {-1};
  std::vector<int> fault_recovery = {-1};

  /// Cluster axes (serving/cluster.h).  `replicas` 0 is the single-engine
  /// sentinel (cells run exactly as before the cluster subsystem existed);
  /// N >= 1 runs the cell as an N-replica cluster of the cell's deployment
  /// shape.  `router_policies` "" inherits "round_robin" without adding a
  /// label segment; `disaggregation` -1 inherits colocated, 0/1 force it
  /// (1 splits `cluster_prefill_replicas` replicas off for prefill).
  /// Defaults keep pre-cluster grids — and their labels — byte-identical.
  std::vector<int> replicas = {0};
  std::vector<std::string> router_policies = {""};
  std::vector<int> disaggregation = {-1};
  int cluster_prefill_replicas = 1;

  ServingScenario base;        ///< prototype; model/chips/eviction/admission/
                               ///< paged-KV knobs overridden
  RequestStreamConfig stream;  ///< prototype; arrival_rate overridden

  void validate() const;
};

/// One grid cell's coordinates plus its metrics.  `model` + `dtype`
/// identify the model axis (same-named models commonly differ only in
/// dtype, e.g. llama2-7b at int4 vs int8).
struct SweepCellResult {
  double arrival_rate = 0;
  std::string model;
  ir::DType dtype = ir::DType::kInt8;
  int chips = 1;
  EvictionPolicy policy = EvictionPolicy::kPreemptNewest;
  std::string admission = "fifo";
  std::int64_t kv_block_tokens = 1;  ///< effective (sentinels resolved)
  bool prefix_caching = false;       ///< effective (sentinels resolved)
  double fault_rate = -1;   ///< axis value as given (-1 = base inherited)
  int fault_recovery = -1;  ///< axis value as given (-1 = base inherited)
  int replicas = 0;         ///< axis value as given (0 = single engine)
  std::string router_policy;  ///< effective name; empty on single-engine cells
  int disaggregated = -1;   ///< axis value as given (-1 = colocated inherited)
  ServingMetrics metrics;
};

/// Expands the grid and runs it via run_sweep.  Results are in grid order
/// (rate-major, prefix-caching-minor) and bit-identical to serial
/// execution.
std::vector<SweepCellResult> run_serving_sweep(
    const ServingSweep& sweep, const SweepOptions& options = {});

}  // namespace cimtpu::serving
