#include "serving/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"
#include "serving/obs_registry.h"

namespace cimtpu::serving {

namespace {

constexpr Seconds kNever = std::numeric_limits<double>::infinity();

// Distinct sub-stream seeds: splitmix64's increment constant keeps the
// derived seeds decorrelated while staying a pure function of
// FaultConfig::seed (same seed -> same storm, whatever else is on).
std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t index) {
  return seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
}

}  // namespace

void FaultConfig::validate() const {
  CIMTPU_CONFIG_CHECK(stall_rate_per_s >= 0 && std::isfinite(stall_rate_per_s),
                      "FaultConfig::stall_rate_per_s must be finite and >= 0");
  CIMTPU_CONFIG_CHECK(stall_duration_s > 0,
                      "FaultConfig::stall_duration_s must be > 0");
  CIMTPU_CONFIG_CHECK(stall_latency_multiplier >= 1.0,
                      "FaultConfig::stall_latency_multiplier must be >= 1");
  CIMTPU_CONFIG_CHECK(
      kv_loss_rate_per_s >= 0 && std::isfinite(kv_loss_rate_per_s),
      "FaultConfig::kv_loss_rate_per_s must be finite and >= 0");
  CIMTPU_CONFIG_CHECK(
      device_failure_rate_per_s >= 0 && std::isfinite(device_failure_rate_per_s),
      "FaultConfig::device_failure_rate_per_s must be finite and >= 0");
  CIMTPU_CONFIG_CHECK(device_restart_s > 0,
                      "FaultConfig::device_restart_s must be > 0");
  CIMTPU_CONFIG_CHECK(retry_backoff_base_s > 0,
                      "FaultConfig::retry_backoff_base_s must be > 0");
  CIMTPU_CONFIG_CHECK(retry_backoff_max_s >= retry_backoff_base_s,
                      "FaultConfig::retry_backoff_max_s must be >= base");
  CIMTPU_CONFIG_CHECK(retry_budget >= 0,
                      "FaultConfig::retry_budget must be >= 0");
  CIMTPU_CONFIG_CHECK(degrade_window_s >= 0,
                      "FaultConfig::degrade_window_s must be >= 0");
  if (degrade_window_s > 0) {
    CIMTPU_CONFIG_CHECK(degrade_enter_faults > 0,
                        "FaultConfig::degrade_enter_faults must be > 0");
    CIMTPU_CONFIG_CHECK(
        degrade_exit_faults >= 0 && degrade_exit_faults < degrade_enter_faults,
        "FaultConfig::degrade_exit_faults must be in [0, enter) for "
        "hysteresis");
    CIMTPU_CONFIG_CHECK(
        degraded_max_batch_fraction > 0 && degraded_max_batch_fraction <= 1.0,
        "FaultConfig::degraded_max_batch_fraction must be in (0, 1]");
    CIMTPU_CONFIG_CHECK(degraded_extra_shed_slack_s >= 0,
                        "FaultConfig::degraded_extra_shed_slack_s must be "
                        ">= 0");
  }
}

const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::kStall:
      return "stall";
    case FaultType::kKvLoss:
      return "kv_loss";
    case FaultType::kDeviceFailure:
      return "device_failure";
  }
  return "unknown";
}

FaultProcess::FaultProcess(const FaultConfig& config)
    : config_(config),
      stall_rng_(substream_seed(config.seed, 0)),
      kv_loss_rng_(substream_seed(config.seed, 1)),
      failure_rng_(substream_seed(config.seed, 2)),
      victim_rng_(substream_seed(config.seed, 3)) {
  config_.validate();
  next_stall_ = draw_interval(&stall_rng_, config_.stall_rate_per_s);
  next_kv_loss_ = draw_interval(&kv_loss_rng_, config_.kv_loss_rate_per_s);
  next_failure_ =
      draw_interval(&failure_rng_, config_.device_failure_rate_per_s);
}

Seconds FaultProcess::draw_interval(Rng* rng, double rate) {
  if (rate <= 0) return kNever;
  // Inverse-CDF exponential; 1 - uniform() keeps the argument in (0, 1].
  return -std::log(1.0 - rng->uniform()) / rate;
}

Seconds FaultProcess::next_event_time() const {
  return std::min(next_stall_, std::min(next_kv_loss_, next_failure_));
}

bool FaultProcess::poll(Seconds now, FaultEvent* out) {
  const Seconds next = next_event_time();
  if (next > now) return false;
  if (next == next_stall_) {
    out->type = FaultType::kStall;
    out->time = next_stall_;
    next_stall_ += draw_interval(&stall_rng_, config_.stall_rate_per_s);
  } else if (next == next_kv_loss_) {
    out->type = FaultType::kKvLoss;
    out->time = next_kv_loss_;
    next_kv_loss_ += draw_interval(&kv_loss_rng_, config_.kv_loss_rate_per_s);
  } else {
    out->type = FaultType::kDeviceFailure;
    out->time = next_failure_;
    next_failure_ +=
        draw_interval(&failure_rng_, config_.device_failure_rate_per_s);
  }
  return true;
}

std::int64_t FaultProcess::pick_victim(std::int64_t resident_count) {
  CIMTPU_CHECK_MSG(resident_count > 0,
                   "FaultProcess::pick_victim needs a non-empty resident set");
  return victim_rng_.uniform_int(0, resident_count - 1);
}

DegradationController::DegradationController(const FaultConfig& config)
    : config_(config) {}

void DegradationController::on_fault(Seconds now) {
  if (!enabled()) return;
  recent_.push_back(now);
}

bool DegradationController::update(Seconds now) {
  if (!enabled()) return false;
  while (!recent_.empty() && recent_.front() < now - config_.degrade_window_s) {
    recent_.pop_front();
  }
  const auto count = static_cast<int>(recent_.size());
  if (!degraded_ && count >= config_.degrade_enter_faults) {
    degraded_ = true;
    return true;
  }
  if (degraded_ && count <= config_.degrade_exit_faults) {
    degraded_ = false;
    return true;
  }
  return false;
}

void FaultStats::publish(MetricsRegistry* registry) const {
  registry->counter("fault.stalls") = stalls;
  registry->counter("fault.kv_losses") = kv_losses;
  registry->counter("fault.device_failures") = device_failures;
  registry->counter("fault.host_restores") = host_restores;
  registry->set_gauge("fault.host_restore_bytes", host_restore_bytes);
  registry->counter("fault.retries_total") = retries;
  registry->counter("fault.dropped") = dropped;
  registry->counter("fault.wasted_recompute_tokens") = wasted_recompute_tokens;
  registry->counter("fault.degrade_enters") = degrade_enters;
  registry->counter("fault.degrade_exits") = degrade_exits;
}

}  // namespace cimtpu::serving
