#include "serving/cluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "arch/chip.h"
#include "common/status.h"
#include "parallel/multi_chip.h"
#include "serving/kv_cache_manager.h"
#include "sim/workload_runner.h"

namespace cimtpu::serving {

void ClusterConfig::validate() const {
  base.validate();
  CIMTPU_CONFIG_CHECK(!replicas.empty(), "cluster needs at least one replica");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaSpec& spec = replicas[i];
    CIMTPU_CONFIG_CHECK(spec.chips >= 1, "replica " << i << ": chips must be >= 1, got "
                                                    << spec.chips);
    CIMTPU_CONFIG_CHECK(spec.tensor_parallel_ways >= 1,
                        "replica " << i << ": tensor_parallel_ways must be >= 1, got "
                                   << spec.tensor_parallel_ways);
    CIMTPU_CONFIG_CHECK(
        spec.chips == 1 || spec.tensor_parallel_ways == 1,
        "replica " << i
                   << ": pipeline stages and tensor parallelism cannot combine");
  }
  if (disaggregated) {
    CIMTPU_CONFIG_CHECK(prefill_replicas >= 1,
                        "disaggregated mode needs >= 1 prefill replica, got "
                            << prefill_replicas);
    CIMTPU_CONFIG_CHECK(
        static_cast<std::size_t>(prefill_replicas) < replicas.size(),
        "disaggregated mode needs >= 1 decode replica: "
            << prefill_replicas << " prefill of " << replicas.size()
            << " total");
    CIMTPU_CONFIG_CHECK(base.max_sim_seconds == 0,
                        "disaggregated mode does not support max_sim_seconds "
                        "(per-side horizons would desynchronize the stitch)");
  }
}

namespace {

// --- Builtin router policies -------------------------------------------------

int least_loaded_replica(const std::vector<ReplicaLoad>& loads) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(loads.size()); ++i) {
    if (loads[i].outstanding_tokens < loads[best].outstanding_tokens) best = i;
  }
  return best;  // ties resolve to the lowest index
}

class RoundRobinRouter final : public RouterPolicy {
 public:
  explicit RoundRobinRouter(int num_replicas) : num_replicas_(num_replicas) {}
  int route(const Request&, const std::vector<ReplicaLoad>&) override {
    const int pick = next_;
    next_ = (next_ + 1) % num_replicas_;
    return pick;
  }

 private:
  int num_replicas_;
  int next_ = 0;
};

class LeastLoadedRouter final : public RouterPolicy {
 public:
  int route(const Request&, const std::vector<ReplicaLoad>& loads) override {
    return least_loaded_replica(loads);
  }
};

// Requests sharing a prefix_id stick to the replica that served the first
// of their family, so its prefix cache stays warm for the whole family;
// first-seen (and untagged) requests fall back to least-loaded.
class PrefixAffinityRouter final : public RouterPolicy {
 public:
  int route(const Request& request,
            const std::vector<ReplicaLoad>& loads) override {
    if (request.prefix_id >= 0) {
      const auto it = sticky_.find(request.prefix_id);
      if (it != sticky_.end()) return it->second;
    }
    const int pick = least_loaded_replica(loads);
    if (request.prefix_id >= 0) sticky_.emplace(request.prefix_id, pick);
    return pick;
  }

 private:
  std::unordered_map<std::int64_t, int> sticky_;
};

class TenantStickyRouter final : public RouterPolicy {
 public:
  explicit TenantStickyRouter(int num_replicas)
      : num_replicas_(num_replicas) {}
  int route(const Request& request, const std::vector<ReplicaLoad>&) override {
    const auto [it, inserted] = sticky_.try_emplace(request.tenant_id, next_);
    if (inserted) next_ = (next_ + 1) % num_replicas_;
    return it->second;
  }

 private:
  int num_replicas_;
  int next_ = 0;
  std::unordered_map<std::int64_t, int> sticky_;
};

// --- Registry ----------------------------------------------------------------

std::map<std::string, RouterPolicyFactory>& router_registry() {
  static std::map<std::string, RouterPolicyFactory> registry = {
      {"round_robin",
       [](int n) { return std::make_unique<RoundRobinRouter>(n); }},
      {"least_loaded",
       [](int) { return std::make_unique<LeastLoadedRouter>(); }},
      {"prefix_affinity",
       [](int) { return std::make_unique<PrefixAffinityRouter>(); }},
      {"tenant_sticky",
       [](int n) { return std::make_unique<TenantStickyRouter>(n); }},
  };
  return registry;
}

}  // namespace

void register_router_policy(const std::string& name,
                            RouterPolicyFactory factory) {
  CIMTPU_CONFIG_CHECK(!name.empty(), "router policy name must be non-empty");
  CIMTPU_CONFIG_CHECK(factory != nullptr,
                      "router policy '" << name << "' needs a factory");
  router_registry()[name] = std::move(factory);
}

std::vector<std::string> router_policy_names() {
  std::vector<std::string> names;
  names.reserve(router_registry().size());
  for (const auto& [name, factory] : router_registry()) names.push_back(name);
  return names;  // sorted: map iteration order
}

std::unique_ptr<RouterPolicy> make_router_policy(const std::string& name,
                                                 int num_replicas) {
  CIMTPU_CONFIG_CHECK(num_replicas >= 1,
                      "router needs >= 1 replica, got " << num_replicas);
  const auto it = router_registry().find(name);
  if (it == router_registry().end()) {
    std::ostringstream known;
    for (const auto& [registered, factory] : router_registry()) {
      known << ' ' << registered;
    }
    CIMTPU_CONFIG_CHECK(false, "unknown router policy '"
                                   << name << "'; registered:" << known.str());
  }
  std::unique_ptr<RouterPolicy> policy = it->second(num_replicas);
  CIMTPU_CHECK_MSG(policy != nullptr,
                   "router policy factory '" << name << "' returned null");
  return policy;
}

namespace {

// --- Cluster run -------------------------------------------------------------

constexpr Seconds kNever = std::numeric_limits<double>::infinity();

struct StitchedRequest {
  const Request* request = nullptr;
  bool arrived = false;
  Seconds first_token = -1;
  Seconds completion = -1;
  bool shed = false;
};

// A finished prefill whose KV is in flight to a decode replica: the decode
// side may only see the request once the last block lands at `ready`.
struct PendingTransfer {
  Seconds ready = 0;
  std::int64_t id = 0;
  int src_replica = 0;
  std::int64_t blocks = 0;
  Bytes bytes = 0;
  Seconds duration = 0;
};

struct TransferLater {
  bool operator()(const PendingTransfer& a, const PendingTransfer& b) const {
    if (a.ready != b.ready) return a.ready > b.ready;
    return a.id > b.id;  // deterministic tie-break
  }
};

ServingScenario replica_scenario(const ClusterConfig& config, int index,
                                 bool multi_replica) {
  ServingScenario scenario = config.base;
  scenario.chips = config.replicas[index].chips;
  scenario.tensor_parallel_ways = config.replicas[index].tensor_parallel_ways;
  if (multi_replica && scenario.trace.enabled) {
    scenario.trace.label += "_r" + std::to_string(index);
  }
  return scenario;
}

// Stitched distributional rollup over the ORIGINAL requests, mirroring the
// single-engine finish() semantics (serving_sim.cpp): TTFT for every
// emitted first token, e2e/TPOT/SLO for completions, SLO judged against
// the ORIGINAL deadlines.
void stitch_requests(const std::vector<Request>& requests,
                     const std::unordered_map<std::int64_t, StitchedRequest>&
                         stitched,
                     ClusterMetrics* cluster) {
  std::vector<double> ttft, tpot, e2e;
  ttft.reserve(requests.size());
  tpot.reserve(requests.size());
  e2e.reserve(requests.size());
  std::int64_t slo_tokens = 0;
  for (const Request& request : requests) {
    const auto it = stitched.find(request.id);
    if (it == stitched.end() || !it->second.arrived) continue;
    cluster->arrived += 1;
    const StitchedRequest& row = it->second;
    if (row.shed) cluster->shed += 1;
    if (row.first_token >= 0) {
      ttft.push_back(row.first_token - request.arrival_time);
    }
    if (row.completion < 0) continue;
    cluster->completed += 1;
    cluster->generated_tokens += request.output_len;
    cluster->makespan = std::max(cluster->makespan, row.completion);
    e2e.push_back(row.completion - request.arrival_time);
    if (request.output_len > 1 && row.first_token >= 0) {
      tpot.push_back((row.completion - row.first_token) /
                     static_cast<double>(request.output_len - 1));
    }
    bool met = true;
    if (request.ttft_deadline > 0) {
      met = row.first_token - request.arrival_time <= request.ttft_deadline;
    }
    if (met && request.tpot_deadline > 0 && request.output_len > 1) {
      met = (row.completion - row.first_token) /
                static_cast<double>(request.output_len - 1) <=
            request.tpot_deadline;
    }
    if (met) {
      cluster->slo_met += 1;
      slo_tokens += request.output_len;
    }
  }
  cluster->ttft = summarize_latencies(ttft);
  cluster->tpot = summarize_latencies(tpot);
  cluster->e2e = summarize_latencies(e2e);
  if (cluster->arrived > 0) {
    cluster->slo_attainment = static_cast<double>(cluster->slo_met) /
                              static_cast<double>(cluster->arrived);
    cluster->availability = static_cast<double>(cluster->completed) /
                            static_cast<double>(cluster->arrived);
  }
  if (cluster->makespan > 0) {
    cluster->goodput_tokens_per_second =
        static_cast<double>(cluster->generated_tokens) / cluster->makespan;
  }
  (void)slo_tokens;
}

// Fleet-level rollups computed from the finished per-replica metrics:
// prefix economics, Jain-across-replicas imbalance (over the serving
// replicas [first_serving, n)), utilization, and the "cluster.*" registry.
void finish_cluster(const ClusterConfig& config, int first_serving,
                    ClusterMetrics* cluster) {
  const int n = static_cast<int>(config.replicas.size());
  std::int64_t lookup = 0, hits = 0;
  std::vector<double> serving_tokens;
  serving_tokens.reserve(n - first_serving);
  cluster->replica_utilization.reserve(n);
  for (int i = 0; i < n; ++i) {
    const ServingMetrics& replica = cluster->replica_metrics[i];
    lookup += replica.counters.prefix_lookup_tokens;
    hits += replica.counters.prefix_hit_tokens;
    cluster->replica_utilization.push_back(replica.mxu_utilization);
    cluster->total_chips += replica.chips;
    if (i >= first_serving) {
      serving_tokens.push_back(static_cast<double>(replica.generated_tokens));
    }
  }
  if (lookup > 0) {
    cluster->prefix_hit_rate =
        static_cast<double>(hits) / static_cast<double>(lookup);
  }
  if (serving_tokens.size() > 1) {
    cluster->jain_across_replicas = jain_fairness_index(serving_tokens);
  }

  MetricsRegistry& registry = cluster->registry;
  registry.set_counter("cluster.replicas", cluster->replicas);
  registry.set_counter("cluster.total_chips", cluster->total_chips);
  registry.set_counter("cluster.disaggregated",
                       cluster->disaggregated ? 1 : 0);
  registry.set_counter("cluster.num_requests", cluster->num_requests);
  registry.set_counter("cluster.arrived", cluster->arrived);
  registry.set_counter("cluster.completed", cluster->completed);
  registry.set_counter("cluster.shed", cluster->shed);
  registry.set_counter("cluster.generated_tokens", cluster->generated_tokens);
  registry.set_gauge("cluster.makespan_s", cluster->makespan);
  registry.set_gauge("cluster.goodput_tokens_per_s",
                     cluster->goodput_tokens_per_second);
  registry.set_gauge("cluster.slo_attainment", cluster->slo_attainment);
  registry.set_gauge("cluster.availability", cluster->availability);
  registry.set_gauge("cluster.prefix_hit_rate", cluster->prefix_hit_rate);
  registry.set_gauge("cluster.jain_across_replicas",
                     cluster->jain_across_replicas);
  if (cluster->disaggregated) {
    registry.set_counter("cluster.prefill_replicas", config.prefill_replicas);
    registry.set_counter("cluster.kv_transfer_count",
                         cluster->kv_transfer_count);
    registry.set_counter("cluster.kv_transfer_blocks",
                         cluster->kv_transfer_blocks);
    registry.set_counter("cluster.kv_transfer_bytes",
                         static_cast<std::int64_t>(cluster->kv_transfer_bytes));
    registry.set_gauge("cluster.kv_transfer_seconds",
                       cluster->kv_transfer_seconds);
  }
  for (int i = 0; i < n; ++i) {
    const ServingMetrics& replica = cluster->replica_metrics[i];
    const std::string prefix = "cluster.replica" + std::to_string(i) + ".";
    registry.set_counter(prefix + "chips", replica.chips);
    registry.set_counter(prefix + "completed", replica.completed);
    registry.set_counter(prefix + "generated_tokens",
                         replica.generated_tokens);
    registry.set_gauge(prefix + "utilization", replica.mxu_utilization);
    const int ways = config.replicas[i].tensor_parallel_ways;
    if (ways > 1) {
      // The multi_chip.h TP model, dispatched from serving: the reference
      // whole-request latency/communication split the per-step all-reduce
      // costing inside the replica engine is reconciled against.
      sim::LlmScenario reference;
      reference.model = config.base.model;
      const parallel::LlmTensorParallelResult tp =
          parallel::evaluate_llm_tensor_parallel(config.base.chip_config,
                                                 reference, ways);
      registry.set_counter(prefix + "tensor_parallel_ways", tp.ways);
      registry.set_gauge(prefix + "tp_reference_latency_s", tp.latency);
      registry.set_gauge(prefix + "tp_reference_communication_s",
                         tp.communication_time);
    }
  }
}

}  // namespace

ClusterMetrics run_serving_cluster(const ClusterConfig& config,
                                   const std::vector<Request>& requests,
                                   SharedStepCostCache* shared_costs,
                                   ServingTrace* trace_out) {
  config.validate();
  const auto wall_start = std::chrono::steady_clock::now();
  const int n = static_cast<int>(config.replicas.size());

  ClusterMetrics cluster;
  cluster.replicas = n;
  cluster.disaggregated = config.disaggregated;
  cluster.num_requests = static_cast<std::int64_t>(requests.size());
  cluster.replica_metrics.reserve(n);

  // --- Single replica, colocated: the single-engine path, bit for bit ----
  // Exactly the inject-all / drain / finish sequence run_serving performs
  // (with trace_out forwarded straight through), so every golden pin,
  // trace file, and registry byte is preserved.  The router policy is
  // still constructed — an unknown name must fail identically at N=1.
  if (n == 1 && !config.disaggregated) {
    make_router_policy(config.router_policy, 1);
    const ServingScenario scenario =
        replica_scenario(config, 0, /*multi_replica=*/false);
    ServingEngine engine(scenario, shared_costs, trace_out);
    for (const Request& request : requests) engine.inject(request);
    engine.drain();
    std::unordered_map<std::int64_t, StitchedRequest> stitched;
    stitched.reserve(requests.size());
    for (const ServingEngine::RequestOutcome& outcome : engine.outcomes()) {
      StitchedRequest& row = stitched[outcome.id];
      row.arrived = outcome.arrived;
      row.first_token = outcome.first_token;
      row.completion = outcome.completion;
      row.shed = outcome.shed;
    }
    cluster.replica_metrics.push_back(engine.finish());
    stitch_requests(requests, stitched, &cluster);
    finish_cluster(config, /*first_serving=*/0, &cluster);
    cluster.sim_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return cluster;
  }

  // The router trace: kRoute / kKvTransfer events plus (with a configured
  // dir) its own "<label>_router" trace files next to the per-replica
  // ones.  Mirrors the run_serving trace_out plumbing.
  ServingTrace local_trace;
  ServingTrace* cluster_trace = trace_out != nullptr ? trace_out : &local_trace;
  TraceConfig router_config = config.base.trace;
  if (router_config.enabled) router_config.label += "_router";
  *cluster_trace = ServingTrace(router_config);
  const bool tracing = cluster_trace->enabled();

  std::vector<std::unique_ptr<ServingEngine>> engines;
  engines.reserve(n);
  for (int i = 0; i < n; ++i) {
    engines.push_back(std::make_unique<ServingEngine>(
        replica_scenario(config, i, /*multi_replica=*/true), shared_costs));
  }

  std::unordered_map<std::int64_t, StitchedRequest> stitched;
  stitched.reserve(requests.size());
  for (const Request& request : requests) {
    stitched[request.id].request = &request;
  }

  if (!config.disaggregated) {
    // --- Colocated: route every arrival with all replicas pumped to the
    // arrival instant, so load-aware policies see real loads ------------
    std::unique_ptr<RouterPolicy> policy =
        make_router_policy(config.router_policy, n);
    std::vector<ReplicaLoad> loads(n);
    for (const Request& request : requests) {
      for (auto& engine : engines) engine->pump(request.arrival_time);
      for (int i = 0; i < n; ++i) {
        loads[i].outstanding_tokens = engines[i]->outstanding_tokens();
      }
      const int pick = policy->route(request, loads);
      CIMTPU_CHECK_MSG(pick >= 0 && pick < n,
                       "router policy '" << config.router_policy
                                         << "' picked replica " << pick
                                         << " of " << n);
      if (tracing) {
        cluster_trace->on_route(request, pick, request.arrival_time);
      }
      engines[pick]->inject(request);
    }
    for (auto& engine : engines) engine->drain();
    for (auto& engine : engines) {
      for (const ServingEngine::RequestOutcome& outcome : engine->outcomes()) {
        StitchedRequest& row = stitched[outcome.id];
        row.arrived = outcome.arrived;
        row.first_token = outcome.first_token;
        row.completion = outcome.completion;
        row.shed = outcome.shed;
      }
      cluster.replica_metrics.push_back(engine->finish());
    }
    stitch_requests(requests, stitched, &cluster);
    finish_cluster(config, /*first_serving=*/0, &cluster);
  } else {
    // --- Disaggregated: prefill replicas [0, P) run prompts as
    // output_len=1 clones, finished KV streams block-by-block over the
    // fabric, decode replicas [P, n) pick the request up once the last
    // block lands ------------------------------------------------------
    const int num_prefill = config.prefill_replicas;
    const int num_decode = n - num_prefill;
    std::unique_ptr<RouterPolicy> policy =
        make_router_policy(config.router_policy, num_decode);

    const arch::TpuChip chip(config.base.chip_config);
    const std::int64_t block_tokens = config.base.scheduler.kv_block_tokens;
    const Bytes block_bytes =
        KvCacheManager::token_bytes(config.base.model) *
        static_cast<double>(block_tokens);

    std::unordered_map<std::int64_t, const Request*> by_id;
    by_id.reserve(requests.size());
    for (const Request& request : requests) by_id.emplace(request.id, &request);

    for (int i = 0; i < num_prefill; ++i) engines[i]->set_completion_log(true);

    std::priority_queue<PendingTransfer, std::vector<PendingTransfer>,
                        TransferLater>
        in_flight;
    // Harvests finished prefills off every prefill engine's completion log
    // and launches their KV transfers.  A request with output_len == 1 is
    // already fully served by its prefill clone — nothing to stream.
    const auto harvest = [&]() {
      for (int i = 0; i < num_prefill; ++i) {
        for (const auto& [id, completion] : engines[i]->take_completions()) {
          const Request& original = *by_id.at(id);
          if (original.output_len < 2) continue;
          const std::int64_t blocks =
              (original.prompt_len + block_tokens - 1) / block_tokens;
          const Bytes bytes = static_cast<double>(blocks) * block_bytes;
          // Block-granular streaming: each KV block is its own p2p
          // message, so the transfer pays the hop latency per block —
          // the Mooncake-style pipelining cost model.
          const Seconds duration =
              static_cast<double>(blocks) * chip.ici().p2p_time(block_bytes);
          in_flight.push(PendingTransfer{completion + duration, id, i, blocks,
                                         bytes, duration});
          cluster.kv_transfer_count += 1;
          cluster.kv_transfer_blocks += blocks;
          cluster.kv_transfer_bytes += bytes;
          cluster.kv_transfer_seconds += duration;
        }
      }
    };

    std::size_t next_arrival = 0;
    int next_prefill = 0;  // prefill replicas take arrivals round-robin
    std::vector<ReplicaLoad> loads(num_decode);
    for (;;) {
      const Seconds t_arrival = next_arrival < requests.size()
                                    ? requests[next_arrival].arrival_time
                                    : kNever;
      Seconds t_inject = in_flight.empty() ? kNever : in_flight.top().ready;
      const Seconds t = std::min(t_arrival, t_inject);
      if (t == kNever) {
        // No event in sight: finished prefills may still be working
        // through their queues — drain them and re-check for transfers.
        bool pending = false;
        for (int i = 0; i < num_prefill; ++i) {
          pending = pending || engines[i]->work_pending();
        }
        if (!pending) break;
        for (int i = 0; i < num_prefill; ++i) engines[i]->drain();
        harvest();
        if (in_flight.empty()) break;
        continue;
      }
      for (int i = 0; i < num_prefill; ++i) engines[i]->pump(t);
      harvest();
      // A transfer launched by this harvest can land before `t`'s event.
      t_inject = in_flight.empty() ? kNever : in_flight.top().ready;
      if (t_inject <= t_arrival) {
        const PendingTransfer transfer = in_flight.top();
        in_flight.pop();
        const Request& original = *by_id.at(transfer.id);
        for (int i = 0; i < num_decode; ++i) {
          engines[num_prefill + i]->pump(transfer.ready);
          loads[i].outstanding_tokens =
              engines[num_prefill + i]->outstanding_tokens();
        }
        const int pick = policy->route(original, loads);
        CIMTPU_CHECK_MSG(pick >= 0 && pick < num_decode,
                         "router policy '" << config.router_policy
                                           << "' picked decode replica "
                                           << pick << " of " << num_decode);
        const int dst = num_prefill + pick;
        if (tracing) {
          cluster_trace->on_kv_transfer(
              transfer.id, transfer.src_replica, dst, transfer.blocks,
              transfer.bytes, transfer.ready - transfer.duration,
              transfer.duration);
          cluster_trace->on_route(original, dst, transfer.ready);
        }
        // The decode-side clone: lands when its KV does, keeps its output
        // budget, and drops the prefix tag (its prompt KV arrived by
        // wire, not through this replica's prefix cache) and deadlines
        // (SLOs are judged at the stitch against the ORIGINAL request —
        // decode-side EDF would misread an already-served TTFT).
        Request clone = original;
        clone.arrival_time = transfer.ready;
        clone.prefix_id = -1;
        clone.prefix_len = 0;
        clone.ttft_deadline = 0;
        clone.tpot_deadline = 0;
        engines[dst]->inject_prefilled(clone);
      } else {
        const Request& original = requests[next_arrival];
        if (tracing) {
          cluster_trace->on_route(original, next_prefill,
                                  original.arrival_time);
        }
        // The prefill-side clone: the prompt plus ONE output token — its
        // emission is the request's first token (TTFT is measured here).
        Request clone = original;
        clone.output_len = 1;
        clone.tpot_deadline = 0;  // no steady decode on this side
        engines[next_prefill]->inject(clone);
        next_prefill = (next_prefill + 1) % num_prefill;
        next_arrival += 1;
      }
    }
    for (auto& engine : engines) engine->drain();

    // Stitch: TTFT (and arrival) from the prefill side, completion from
    // the decode side; an output_len == 1 request completes on the
    // prefill side outright.  A request is shed if EITHER side shed it —
    // a shed prefill never transfers, so its decode fields stay unset.
    for (int i = 0; i < n; ++i) {
      const bool prefill_side = i < num_prefill;
      for (const ServingEngine::RequestOutcome& outcome :
           engines[i]->outcomes()) {
        StitchedRequest& row = stitched[outcome.id];
        if (prefill_side) {
          row.arrived = outcome.arrived;
          row.first_token = outcome.first_token;
          row.shed = row.shed || outcome.shed;
          if (row.request->output_len < 2) row.completion = outcome.completion;
        } else {
          row.completion = outcome.completion;
          row.shed = row.shed || outcome.shed;
        }
      }
      cluster.replica_metrics.push_back(engines[i]->finish());
    }
    stitch_requests(requests, stitched, &cluster);
    finish_cluster(config, /*first_serving=*/num_prefill, &cluster);
  }

  if (tracing) write_trace_files(*cluster_trace, {});
  cluster.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return cluster;
}

ServingMetrics flatten_cluster_metrics(ClusterMetrics&& cluster) {
  ServingMetrics flat;
  flat.chips = cluster.total_chips;
  flat.num_requests = cluster.num_requests;
  flat.completed = cluster.completed;
  flat.generated_tokens = cluster.generated_tokens;
  flat.makespan = cluster.makespan;
  flat.ttft = cluster.ttft;
  flat.tpot = cluster.tpot;
  flat.e2e = cluster.e2e;
  flat.goodput_tokens_per_second = cluster.goodput_tokens_per_second;
  flat.slo_met = cluster.slo_met;
  flat.slo_attainment = cluster.slo_attainment;
  flat.availability = cluster.availability;
  flat.prefix_hit_rate = cluster.prefix_hit_rate;
  double busy_chip_seconds = 0;
  for (const ServingMetrics& replica : cluster.replica_metrics) {
    flat.total_steps += replica.total_steps;
    flat.prefill_steps += replica.prefill_steps;
    flat.decode_steps += replica.decode_steps;
    flat.preemptions += replica.preemptions;
    flat.counters.preemptions_recompute +=
        replica.counters.preemptions_recompute;
    flat.counters.preemptions_swap += replica.counters.preemptions_swap;
    flat.counters.swap_ins += replica.counters.swap_ins;
    flat.counters.swap_out_bytes += replica.counters.swap_out_bytes;
    flat.counters.swap_in_bytes += replica.counters.swap_in_bytes;
    flat.counters.chunked_prefill_steps +=
        replica.counters.chunked_prefill_steps;
    flat.counters.prefix_lookup_tokens += replica.counters.prefix_lookup_tokens;
    flat.counters.prefix_hit_tokens += replica.counters.prefix_hit_tokens;
    flat.counters.prefix_shared_blocks +=
        replica.counters.prefix_shared_blocks;
    flat.counters.prefix_cow_blocks += replica.counters.prefix_cow_blocks;
    flat.counters.shed_deadline += replica.counters.shed_deadline;
    flat.counters.shed_horizon += replica.counters.shed_horizon;
    flat.counters.shed_fault += replica.counters.shed_fault;
    flat.wasted_recompute_tokens += replica.wasted_recompute_tokens;
    flat.retries_total += replica.retries_total;
    flat.mxu_energy += replica.mxu_energy;
    flat.total_energy += replica.total_energy;
    flat.cost_cache_entries += replica.cost_cache_entries;
    flat.cost_cache_hits += replica.cost_cache_hits;
    flat.cost_cache_misses += replica.cost_cache_misses;
    flat.sim_end_seconds = std::max(flat.sim_end_seconds,
                                    replica.sim_end_seconds);
    busy_chip_seconds += replica.mxu_utilization * replica.makespan *
                         static_cast<double>(replica.chips);
  }
  if (flat.makespan > 0 && flat.chips > 0) {
    flat.mxu_utilization =
        busy_chip_seconds /
        (flat.makespan * static_cast<double>(flat.chips));
  }
  if (flat.generated_tokens > 0) {
    flat.energy_per_token =
        flat.total_energy / static_cast<double>(flat.generated_tokens);
  }
  flat.jain_fairness = cluster.jain_across_replicas;
  flat.registry = std::move(cluster.registry);
  flat.sim_wall_seconds = cluster.sim_wall_seconds;
  if (flat.sim_wall_seconds > 0) {
    flat.steps_per_second =
        static_cast<double>(flat.total_steps) / flat.sim_wall_seconds;
  }
  return flat;
}

}  // namespace cimtpu::serving
