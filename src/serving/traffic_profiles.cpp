#include "serving/traffic_profiles.h"

#include "common/status.h"
#include "models/model_zoo.h"

namespace cimtpu::serving {

RequestStreamConfig zipf_chat_stream(std::uint64_t seed,
                                     std::int64_t num_requests,
                                     double arrival_rate,
                                     std::int64_t priority_classes) {
  RequestStreamConfig stream;
  stream.seed = seed;
  stream.num_requests = num_requests;
  stream.arrival_rate = arrival_rate;
  stream.process = ArrivalProcess::kPoisson;
  stream.prompt.kind = LengthDistribution::kZipf;
  stream.prompt.min_len = 16;
  stream.prompt.max_len = 4096;
  stream.prompt.zipf_alpha = 1.05;
  stream.output.kind = LengthDistribution::kZipf;
  stream.output.min_len = 4;
  stream.output.max_len = 1024;
  stream.output.zipf_alpha = 1.05;
  stream.priority_classes = priority_classes;
  return stream;
}

ServingScenario llama7b_baseline_scenario(int chips, ir::DType dtype) {
  ServingScenario scenario;
  scenario.model = models::llama2_7b();
  scenario.model.dtype = dtype;
  scenario.chip_config = arch::tpu_v4i_baseline();
  scenario.scheduler.max_batch = 32;
  scenario.scheduler.max_prefill_batch = 8;
  scenario.chips = chips;
  return scenario;
}

ServingScenario llama7b_pressured_scenario(int chips, ir::DType dtype,
                                           EvictionPolicy policy,
                                           std::int64_t chunk_tokens,
                                           std::int64_t kv_budget_tokens) {
  ServingScenario scenario = llama7b_baseline_scenario(chips, dtype);
  scenario.eviction = policy;
  scenario.scheduler.prefill_chunk_tokens = chunk_tokens;
  scenario.kv_budget_override =
      KvCacheManager::token_bytes(scenario.model) *
      static_cast<double>(kv_budget_tokens);
  return scenario;
}

std::vector<SweepPoint> pressured_policy_grid_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests, std::int64_t kv_budget_tokens) {
  std::vector<SweepPoint> points;
  for (EvictionPolicy policy :
       {EvictionPolicy::kPreemptNewest, EvictionPolicy::kSwapToHost,
        EvictionPolicy::kPriorityVictim}) {
    for (std::int64_t chunk : {std::int64_t{0}, std::int64_t{512}}) {
      SweepPoint point;
      point.label = "policy=" + eviction_policy_name(policy) +
                    " chunk=" + std::to_string(chunk);
      point.scenario = llama7b_pressured_scenario(
          /*chips=*/1, model.dtype, policy, chunk, kv_budget_tokens);
      point.scenario.model = model;
      point.scenario.kv_budget_override =
          KvCacheManager::token_bytes(model) *
          static_cast<double>(kv_budget_tokens);
      point.requests = requests;
      points.push_back(std::move(point));
    }
  }
  return points;
}

RequestStreamConfig multi_tenant_pressure_stream(std::uint64_t seed,
                                                 std::int64_t num_requests,
                                                 double arrival_rate,
                                                 std::int64_t num_tenants) {
  RequestStreamConfig stream;
  stream.seed = seed;
  stream.num_requests = num_requests;
  stream.arrival_rate = arrival_rate;
  stream.process = ArrivalProcess::kPoisson;
  stream.prompt.kind = LengthDistribution::kUniform;
  stream.prompt.min_len = 128;
  stream.prompt.max_len = 256;
  stream.output.kind = LengthDistribution::kUniform;
  stream.output.min_len = 64;
  stream.output.max_len = 128;
  stream.num_tenants = num_tenants;
  return stream;
}

ServingScenario multi_tenant_fairness_scenario(
    ir::DType dtype, const std::string& admission,
    const std::vector<double>& weights, Seconds horizon_seconds,
    std::int64_t kv_budget_tokens) {
  ServingScenario scenario = llama7b_pressured_scenario(
      /*chips=*/1, dtype, EvictionPolicy::kPreemptNewest, /*chunk_tokens=*/0,
      kv_budget_tokens);
  scenario.scheduler.admission.policy = admission;
  scenario.scheduler.admission.tenants.reserve(weights.size());
  for (double weight : weights) {
    TenantShare share;
    share.weight = weight;
    scenario.scheduler.admission.tenants.push_back(share);
  }
  scenario.max_sim_seconds = horizon_seconds;
  return scenario;
}

RequestStreamConfig prefix_chatbot_stream(std::uint64_t seed,
                                          std::int64_t num_requests,
                                          double arrival_rate,
                                          std::int64_t prefix_pool,
                                          std::int64_t prefix_len) {
  RequestStreamConfig stream;
  stream.seed = seed;
  stream.num_requests = num_requests;
  stream.arrival_rate = arrival_rate;
  stream.process = ArrivalProcess::kPoisson;
  stream.prompt.kind = LengthDistribution::kZipf;
  stream.prompt.min_len = 16;
  stream.prompt.max_len = 512;
  stream.prompt.zipf_alpha = 1.05;
  stream.output.kind = LengthDistribution::kZipf;
  stream.output.min_len = 16;
  stream.output.max_len = 256;
  stream.output.zipf_alpha = 1.05;
  stream.prefix_pool_size = prefix_pool;
  stream.prefix_len_tokens = prefix_len;
  return stream;
}

ServingScenario prefix_cache_scenario(ir::DType dtype,
                                      bool enable_prefix_cache,
                                      std::int64_t kv_block_tokens,
                                      std::int64_t kv_budget_tokens) {
  ServingScenario scenario = llama7b_baseline_scenario(/*chips=*/1, dtype);
  scenario.scheduler.kv_block_tokens = kv_block_tokens;
  scenario.scheduler.enable_prefix_cache = enable_prefix_cache;
  scenario.kv_budget_override =
      KvCacheManager::token_bytes(scenario.model) *
      static_cast<double>(kv_budget_tokens);
  return scenario;
}

std::vector<SweepPoint> prefix_cache_grid_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests, std::int64_t kv_budget_tokens) {
  // Off/on at the canonical block size, plus a larger-block caching-on
  // point so the fragmentation / hit-rate tradeoff is visible on one grid.
  const struct {
    std::int64_t block;
    bool caching;
  } cells[] = {{16, false}, {16, true}, {64, true}};
  std::vector<SweepPoint> points;
  for (const auto& cell : cells) {
    SweepPoint point;
    point.label = "block=" + std::to_string(cell.block) +
                  " prefix_cache=" + (cell.caching ? "on" : "off");
    point.scenario = prefix_cache_scenario(model.dtype, cell.caching,
                                           cell.block, kv_budget_tokens);
    point.scenario.model = model;
    point.scenario.kv_budget_override =
        KvCacheManager::token_bytes(model) *
        static_cast<double>(kv_budget_tokens);
    point.requests = requests;
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<SweepPoint> multi_tenant_fairness_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests) {
  std::vector<SweepPoint> points;
  for (const char* admission : {"fifo", "wfq"}) {
    SweepPoint point;
    point.label = std::string("admission=") + admission;
    point.scenario = multi_tenant_fairness_scenario(
        model.dtype, admission, multi_tenant_fairness_weights(),
        kMultiTenantFairnessHorizon);
    point.scenario.model = model;
    // Re-derive the 2000-token budget in the chosen model's own
    // token-bytes (the canonical scenario sized it for llama2-7b).
    point.scenario.kv_budget_override =
        KvCacheManager::token_bytes(model) * 2000.0;
    point.requests = requests;
    points.push_back(std::move(point));
  }
  return points;
}

RequestStreamConfig slo_chat_stream(std::uint64_t seed,
                                    std::int64_t num_requests,
                                    double arrival_rate,
                                    Seconds ttft_deadline_s,
                                    Seconds tpot_deadline_s) {
  RequestStreamConfig stream = multi_tenant_pressure_stream(
      seed, num_requests, arrival_rate, /*num_tenants=*/1);
  stream.ttft_deadline_s = ttft_deadline_s;
  stream.tpot_deadline_s = tpot_deadline_s;
  return stream;
}

ServingScenario slo_scenario(ir::DType dtype, const std::string& admission,
                             Seconds horizon_seconds,
                             std::int64_t kv_budget_tokens) {
  ServingScenario scenario = llama7b_pressured_scenario(
      /*chips=*/1, dtype, EvictionPolicy::kPreemptNewest, /*chunk_tokens=*/0,
      kv_budget_tokens);
  scenario.scheduler.admission.policy = admission;
  // Shed only requests that are provably lost: with zero slack, EDF drops
  // a request once even an IMMEDIATE first token would miss its TTFT
  // deadline.  The win over FIFO comes purely from not spending prefill
  // on work that can no longer count.
  scenario.scheduler.admission.edf_shed_slack_s = 0;
  scenario.max_sim_seconds = horizon_seconds;
  return scenario;
}

ServingSweep slo_frontier_sweep(const models::TransformerConfig& model,
                                std::uint64_t seed) {
  ServingSweep sweep;
  sweep.arrival_rates = slo_frontier_rates();
  sweep.models = {model};
  sweep.chip_counts = {1};
  sweep.policies = {EvictionPolicy::kPreemptNewest};
  sweep.admission_policies = {"fifo", "edf"};
  sweep.base = slo_scenario(model.dtype, /*admission=*/"fifo");
  sweep.base.model = model;
  // Re-derive the 4000-token budget in the chosen model's own token-bytes
  // (the canonical scenario sized it for llama2-7b).
  sweep.base.kv_budget_override = KvCacheManager::token_bytes(model) * 4000.0;
  sweep.stream =
      slo_chat_stream(seed, kSloFrontierRequests, /*arrival_rate=*/1.0);
  return sweep;
}

std::vector<Request> diurnal_tenant_mix_requests(
    std::uint64_t seed, std::int64_t requests_per_tenant,
    double per_tenant_rate, std::int64_t num_tenants, Seconds period_s,
    double amplitude) {
  CIMTPU_CONFIG_CHECK(num_tenants >= 1, "diurnal mix needs >= 1 tenant, got "
                                            << num_tenants);
  constexpr double kTwoPi = 6.283185307179586;
  std::vector<std::vector<Request>> streams;
  streams.reserve(static_cast<std::size_t>(num_tenants));
  for (std::int64_t tenant = 0; tenant < num_tenants; ++tenant) {
    RequestStreamConfig stream = multi_tenant_pressure_stream(
        seed + static_cast<std::uint64_t>(tenant) * 0x9e3779b97f4a7c15ull,
        requests_per_tenant, per_tenant_rate, /*num_tenants=*/1);
    stream.process = ArrivalProcess::kDiurnal;
    stream.diurnal_period_s = period_s;
    stream.diurnal_amplitude = amplitude;
    stream.diurnal_phase =
        kTwoPi * static_cast<double>(tenant) / static_cast<double>(num_tenants);
    std::vector<Request> requests = generate_requests(stream);
    for (Request& request : requests) {
      request.tenant_id = tenant;
    }
    streams.push_back(std::move(requests));
  }
  return merge_request_traces(streams);
}

ServingScenario fault_storm_scenario(ir::DType dtype, bool recovery,
                                     Seconds horizon_seconds) {
  ServingScenario scenario = slo_scenario(dtype, /*admission=*/"edf",
                                          horizon_seconds);
  scenario.fault.enabled = true;
  scenario.fault.seed = kFaultStormSeed;
  // A storm, not background noise: stalls cover a meaningful slice of the
  // window, KV losses land about once a second, and the window sees a
  // couple of full restarts — enough that recovery policy, not luck,
  // decides the frontier.
  scenario.fault.stall_rate_per_s = 0.4;
  scenario.fault.stall_duration_s = 0.5;
  scenario.fault.stall_latency_multiplier = 4.0;
  scenario.fault.kv_loss_rate_per_s = 1.0;
  scenario.fault.device_failure_rate_per_s = 0.05;
  scenario.fault.device_restart_s = 1.0;
  scenario.fault.recovery_enabled = recovery;
  // KV losses repair in place from the host shadow (PCIe re-fetch);
  // device failures still recompute through backoff re-admission.
  scenario.fault.kv_restore = FaultConfig::KvRestoreMode::kHostRestore;
  scenario.fault.retry_budget = 3;
  // Sustained-failure detector: 4 faults in a trailing 5 s window enters
  // degraded mode (half batch, prefix admission paused, +0.5 s EDF
  // shedding slack); it lifts once the window decays to <= 1.
  scenario.fault.degrade_window_s = 5.0;
  scenario.fault.degrade_enter_faults = 4;
  scenario.fault.degrade_exit_faults = 1;
  scenario.fault.degraded_max_batch_fraction = 0.5;
  scenario.fault.degrade_pause_prefix_cache = true;
  scenario.fault.degraded_extra_shed_slack_s = 0.5;
  return scenario;
}

RequestStreamConfig cluster_chatbot_stream(std::uint64_t seed) {
  RequestStreamConfig stream = prefix_chatbot_stream(
      seed, kClusterRouterRequests, kClusterRouterRate, kClusterPrefixPool);
  stream.num_tenants = kClusterTenants;
  return stream;
}

std::vector<SweepPoint> cluster_router_grid_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests) {
  std::vector<SweepPoint> points;
  for (const char* policy : cluster_router_policy_order()) {
    SweepPoint point;
    point.label = std::string("router=") + policy;
    point.scenario = prefix_cache_scenario(model.dtype,
                                           /*enable_prefix_cache=*/true);
    point.scenario.model = model;
    // Re-derive the per-replica 20000-token budget in the chosen model's
    // own token-bytes (the canonical scenario sized it for llama2-7b).
    point.scenario.kv_budget_override =
        KvCacheManager::token_bytes(model) * 20000.0;
    point.replicas = kClusterReplicas;
    point.router_policy = policy;
    point.requests = requests;
    points.push_back(std::move(point));
  }
  return points;
}

ServingSweep cluster_disaggregation_sweep(
    const models::TransformerConfig& model, std::uint64_t seed) {
  ServingSweep sweep;
  sweep.arrival_rates = cluster_disagg_rates();
  sweep.models = {model};
  sweep.chip_counts = {1};
  sweep.policies = {EvictionPolicy::kPreemptNewest};
  sweep.replicas = {kClusterReplicas};
  // "" inherits round_robin without adding a router label segment: the
  // study isolates the colocated-vs-disaggregated axis, nothing else.
  sweep.router_policies = {""};
  sweep.disaggregation = {0, 1};
  sweep.cluster_prefill_replicas = kClusterPrefillReplicas;
  sweep.base = llama7b_baseline_scenario(/*chips=*/1, model.dtype);
  sweep.base.model = model;
  sweep.stream =
      zipf_chat_stream(seed, kClusterDisaggRequests, /*arrival_rate=*/1.0);
  return sweep;
}

RequestStreamConfig flash_crowd_stream(std::uint64_t seed,
                                       std::int64_t num_requests,
                                       double arrival_rate) {
  RequestStreamConfig stream =
      slo_chat_stream(seed, num_requests, arrival_rate);
  stream.process = ArrivalProcess::kBursty;
  stream.burst_factor = 16.0;
  stream.burst_fraction = 0.05;
  return stream;
}

}  // namespace cimtpu::serving
