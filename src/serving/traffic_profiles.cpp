#include "serving/traffic_profiles.h"

#include "models/model_zoo.h"

namespace cimtpu::serving {

RequestStreamConfig zipf_chat_stream(std::uint64_t seed,
                                     std::int64_t num_requests,
                                     double arrival_rate,
                                     std::int64_t priority_classes) {
  RequestStreamConfig stream;
  stream.seed = seed;
  stream.num_requests = num_requests;
  stream.arrival_rate = arrival_rate;
  stream.process = ArrivalProcess::kPoisson;
  stream.prompt.kind = LengthDistribution::kZipf;
  stream.prompt.min_len = 16;
  stream.prompt.max_len = 4096;
  stream.prompt.zipf_alpha = 1.05;
  stream.output.kind = LengthDistribution::kZipf;
  stream.output.min_len = 4;
  stream.output.max_len = 1024;
  stream.output.zipf_alpha = 1.05;
  stream.priority_classes = priority_classes;
  return stream;
}

ServingScenario llama7b_baseline_scenario(int chips, ir::DType dtype) {
  ServingScenario scenario;
  scenario.model = models::llama2_7b();
  scenario.model.dtype = dtype;
  scenario.chip_config = arch::tpu_v4i_baseline();
  scenario.scheduler.max_batch = 32;
  scenario.scheduler.max_prefill_batch = 8;
  scenario.chips = chips;
  return scenario;
}

ServingScenario llama7b_pressured_scenario(int chips, ir::DType dtype,
                                           EvictionPolicy policy,
                                           std::int64_t chunk_tokens,
                                           std::int64_t kv_budget_tokens) {
  ServingScenario scenario = llama7b_baseline_scenario(chips, dtype);
  scenario.eviction = policy;
  scenario.scheduler.prefill_chunk_tokens = chunk_tokens;
  scenario.kv_budget_override =
      KvCacheManager::token_bytes(scenario.model) *
      static_cast<double>(kv_budget_tokens);
  return scenario;
}

std::vector<SweepPoint> pressured_policy_grid_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests, std::int64_t kv_budget_tokens) {
  std::vector<SweepPoint> points;
  for (EvictionPolicy policy :
       {EvictionPolicy::kPreemptNewest, EvictionPolicy::kSwapToHost,
        EvictionPolicy::kPriorityVictim}) {
    for (std::int64_t chunk : {std::int64_t{0}, std::int64_t{512}}) {
      SweepPoint point;
      point.label = "policy=" + eviction_policy_name(policy) +
                    " chunk=" + std::to_string(chunk);
      point.scenario = llama7b_pressured_scenario(
          /*chips=*/1, model.dtype, policy, chunk, kv_budget_tokens);
      point.scenario.model = model;
      point.scenario.kv_budget_override =
          KvCacheManager::token_bytes(model) *
          static_cast<double>(kv_budget_tokens);
      point.requests = requests;
      points.push_back(std::move(point));
    }
  }
  return points;
}

RequestStreamConfig multi_tenant_pressure_stream(std::uint64_t seed,
                                                 std::int64_t num_requests,
                                                 double arrival_rate,
                                                 std::int64_t num_tenants) {
  RequestStreamConfig stream;
  stream.seed = seed;
  stream.num_requests = num_requests;
  stream.arrival_rate = arrival_rate;
  stream.process = ArrivalProcess::kPoisson;
  stream.prompt.kind = LengthDistribution::kUniform;
  stream.prompt.min_len = 128;
  stream.prompt.max_len = 256;
  stream.output.kind = LengthDistribution::kUniform;
  stream.output.min_len = 64;
  stream.output.max_len = 128;
  stream.num_tenants = num_tenants;
  return stream;
}

ServingScenario multi_tenant_fairness_scenario(
    ir::DType dtype, const std::string& admission,
    const std::vector<double>& weights, Seconds horizon_seconds,
    std::int64_t kv_budget_tokens) {
  ServingScenario scenario = llama7b_pressured_scenario(
      /*chips=*/1, dtype, EvictionPolicy::kPreemptNewest, /*chunk_tokens=*/0,
      kv_budget_tokens);
  scenario.scheduler.admission.policy = admission;
  scenario.scheduler.admission.tenants.reserve(weights.size());
  for (double weight : weights) {
    TenantShare share;
    share.weight = weight;
    scenario.scheduler.admission.tenants.push_back(share);
  }
  scenario.max_sim_seconds = horizon_seconds;
  return scenario;
}

RequestStreamConfig prefix_chatbot_stream(std::uint64_t seed,
                                          std::int64_t num_requests,
                                          double arrival_rate,
                                          std::int64_t prefix_pool,
                                          std::int64_t prefix_len) {
  RequestStreamConfig stream;
  stream.seed = seed;
  stream.num_requests = num_requests;
  stream.arrival_rate = arrival_rate;
  stream.process = ArrivalProcess::kPoisson;
  stream.prompt.kind = LengthDistribution::kZipf;
  stream.prompt.min_len = 16;
  stream.prompt.max_len = 512;
  stream.prompt.zipf_alpha = 1.05;
  stream.output.kind = LengthDistribution::kZipf;
  stream.output.min_len = 16;
  stream.output.max_len = 256;
  stream.output.zipf_alpha = 1.05;
  stream.prefix_pool_size = prefix_pool;
  stream.prefix_len_tokens = prefix_len;
  return stream;
}

ServingScenario prefix_cache_scenario(ir::DType dtype,
                                      bool enable_prefix_cache,
                                      std::int64_t kv_block_tokens,
                                      std::int64_t kv_budget_tokens) {
  ServingScenario scenario = llama7b_baseline_scenario(/*chips=*/1, dtype);
  scenario.scheduler.kv_block_tokens = kv_block_tokens;
  scenario.scheduler.enable_prefix_cache = enable_prefix_cache;
  scenario.kv_budget_override =
      KvCacheManager::token_bytes(scenario.model) *
      static_cast<double>(kv_budget_tokens);
  return scenario;
}

std::vector<SweepPoint> prefix_cache_grid_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests, std::int64_t kv_budget_tokens) {
  // Off/on at the canonical block size, plus a larger-block caching-on
  // point so the fragmentation / hit-rate tradeoff is visible on one grid.
  const struct {
    std::int64_t block;
    bool caching;
  } cells[] = {{16, false}, {16, true}, {64, true}};
  std::vector<SweepPoint> points;
  for (const auto& cell : cells) {
    SweepPoint point;
    point.label = "block=" + std::to_string(cell.block) +
                  " prefix_cache=" + (cell.caching ? "on" : "off");
    point.scenario = prefix_cache_scenario(model.dtype, cell.caching,
                                           cell.block, kv_budget_tokens);
    point.scenario.model = model;
    point.scenario.kv_budget_override =
        KvCacheManager::token_bytes(model) *
        static_cast<double>(kv_budget_tokens);
    point.requests = requests;
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<SweepPoint> multi_tenant_fairness_points(
    const models::TransformerConfig& model,
    const std::vector<Request>* requests) {
  std::vector<SweepPoint> points;
  for (const char* admission : {"fifo", "wfq"}) {
    SweepPoint point;
    point.label = std::string("admission=") + admission;
    point.scenario = multi_tenant_fairness_scenario(
        model.dtype, admission, multi_tenant_fairness_weights(),
        kMultiTenantFairnessHorizon);
    point.scenario.model = model;
    // Re-derive the 2000-token budget in the chosen model's own
    // token-bytes (the canonical scenario sized it for llama2-7b).
    point.scenario.kv_budget_override =
        KvCacheManager::token_bytes(model) * 2000.0;
    point.requests = requests;
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace cimtpu::serving
