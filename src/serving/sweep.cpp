#include "serving/sweep.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <limits>
#include <sstream>
#include <thread>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#define CIMTPU_SWEEP_HAS_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/status.h"
#include "serving/cluster.h"
#include "serving/metrics_codec.h"

namespace cimtpu::serving {

namespace {

// FNV-1a 64, fed byte-wise.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t hash = kFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

template <typename T>
std::uint64_t fnv1a_value(const T& value, std::uint64_t hash) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a(&value, sizeof(value), hash);
}

// Content hash of the request trace: every field of every request, in
// order.  Hashing raw field bytes is exact (no float formatting loss);
// the enclosing signature carries the count so traces that are prefixes
// of each other cannot collide by truncation.
std::uint64_t requests_content_hash(const std::vector<Request>& requests) {
  std::uint64_t hash = kFnvOffset;
  for (const Request& r : requests) {
    hash = fnv1a_value(r.id, hash);
    hash = fnv1a_value(r.arrival_time, hash);
    hash = fnv1a_value(r.prompt_len, hash);
    hash = fnv1a_value(r.output_len, hash);
    hash = fnv1a_value(r.priority, hash);
    hash = fnv1a_value(r.tenant_id, hash);
    hash = fnv1a_value(r.prefix_id, hash);
    hash = fnv1a_value(r.prefix_len, hash);
    hash = fnv1a_value(r.ttft_deadline, hash);
    hash = fnv1a_value(r.tpot_deadline, hash);
  }
  return hash;
}

// Runs one sweep point: single-engine when point.replicas == 0 (the
// pre-cluster path, untouched), otherwise an N-replica cluster of the
// cell's deployment shape, flattened so cluster cells sit next to
// single-engine cells in one result table.
ServingMetrics run_point(const SweepPoint& point,
                         const ServingScenario& scenario,
                         SharedStepCostCache* shared_costs) {
  if (point.replicas <= 0) {
    return run_serving(scenario, *point.requests, shared_costs);
  }
  ClusterConfig config;
  config.base = scenario;
  config.replicas.assign(
      static_cast<std::size_t>(point.replicas),
      ReplicaSpec{scenario.chips, scenario.tensor_parallel_ways});
  config.router_policy = point.router_policy;
  config.disaggregated = point.disaggregated;
  config.prefill_replicas = point.prefill_replicas;
  return flatten_cluster_metrics(
      run_serving_cluster(config, *point.requests, shared_costs));
}

// The scenario a point actually simulates under `options` (the
// force_trace_off override applied).
ServingScenario effective_scenario(const SweepPoint& point,
                                   const SweepOptions& options) {
  ServingScenario scenario = point.scenario;
  if (options.force_trace_off) {
    scenario.trace.enabled = false;
    scenario.trace.sample_interval = 0;
  }
  return scenario;
}

bool scenario_traced(const ServingScenario& scenario) {
  return scenario.trace.enabled || scenario.trace.sample_interval > 0;
}

// Failure-message prefix, identical between the thread and fork paths so
// the driver choice never changes what a failing sweep reports.
std::string describe_point(const std::vector<SweepPoint>& points,
                           std::size_t i, const char* what) {
  std::ostringstream message;
  message << "sweep point " << i;
  if (!points[i].label.empty()) message << " (" << points[i].label << ')';
  message << ": " << what;
  return message.str();
}

// Hardened environment count parsing: non-numeric, trailing junk,
// overflow, and negative values are all loud ConfigErrors — a malformed
// value silently falling back to a default worker count would defeat the
// knob's whole purpose (pinning the fan-out).  Unset or "0" return 0
// ("no opinion").
int parse_env_worker_count(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return 0;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(env, &end, 10);
  CIMTPU_CONFIG_CHECK(end != env && *end == '\0' && errno == 0 &&
                          parsed >= 0 &&
                          parsed <= std::numeric_limits<int>::max(),
                      name << "='" << env
                           << "' is not a valid worker count (expected a "
                              "non-negative integer)");
  return static_cast<int>(parsed);
}

}  // namespace

std::string sweep_point_signature(const SweepPoint& point) {
  const ServingScenario& s = point.scenario;
  std::ostringstream sig;
  sig.precision(17);  // doubles round-trip exactly
  // Chip + model + cost bucket reuse the cost cache's exhaustive
  // signature — every layer-simulator knob is already spelled out there.
  sig << cost_cache_signature(s.chip_config, s.model, s.scheduler.seqlen_bucket)
      << "||chips=" << s.chips << "|tp=" << s.tensor_parallel_ways
      << "|evict=" << eviction_policy_name(s.eviction)
      << "|kv_budget=" << s.kv_budget_override
      << "|host_pool=" << s.host_pool_capacity
      << "|host_bw=" << s.host_link_bandwidth
      << "|horizon=" << s.max_sim_seconds;
  const SchedulerConfig& sched = s.scheduler;
  sig << "||batch=" << sched.max_batch << ',' << sched.max_prefill_batch
      << "|kv_block=" << sched.kv_block_tokens
      << "|prefix_cache=" << sched.enable_prefix_cache
      << "|chunk=" << sched.prefill_chunk_tokens
      << "|batched_cost=" << sched.batched_prefill_cost;
  const AdmissionConfig& adm = sched.admission;
  sig << "||adm=" << adm.policy << "|aging=" << adm.aging_rate
      << "|edf_slack=" << adm.edf_shed_slack_s << ','
      << adm.edf_degraded_extra_slack_s << "|tenants=";
  for (const TenantShare& t : adm.tenants) {
    sig << '(' << t.tenant_id << ',' << t.weight << ',' << t.token_rate_cap
        << ',' << t.burst_tokens << ')';
  }
  const FaultConfig& f = s.fault;
  sig << "||fault=" << f.enabled << "|seed=" << f.seed
      << "|stall=" << f.stall_rate_per_s << ',' << f.stall_duration_s << ','
      << f.stall_latency_multiplier << "|kv_loss=" << f.kv_loss_rate_per_s
      << "|dev_fail=" << f.device_failure_rate_per_s << ','
      << f.device_restart_s << "|recovery=" << f.recovery_enabled << ','
      << static_cast<int>(f.kv_restore) << "|retry=" << f.retry_backoff_base_s
      << ',' << f.retry_backoff_max_s << ',' << f.retry_budget
      << "|degrade=" << f.degrade_window_s << ',' << f.degrade_enter_faults
      << ',' << f.degrade_exit_faults << ','
      << f.degraded_max_batch_fraction << ','
      << f.degrade_pause_prefix_cache << ','
      << f.degraded_extra_shed_slack_s;
  sig << "||replicas=" << point.replicas << "|router=" << point.router_policy
      << "|disagg=" << point.disaggregated
      << "|prefill_replicas=" << point.prefill_replicas;
  sig << "||requests=" << point.requests->size() << ':'
      << requests_content_hash(*point.requests);
  return sig.str();
}

std::uint64_t sweep_signature_hash(const std::string& signature) {
  return fnv1a(signature.data(), signature.size());
}

bool SharedSweepResultStore::try_get(const std::string& signature,
                                     ServingMetrics* out) {
  const std::uint64_t hash = sweep_signature_hash(signature);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(hash);
  if (it != entries_.end()) {
    for (const Entry& entry : it->second) {
      // Full-signature confirmation: a 64-bit hash collision between
      // distinct configs must fall through to a miss, never alias.
      if (entry.signature == signature) {
        *out = entry.metrics;
        ++hits_;
        return true;
      }
    }
  }
  ++misses_;
  return false;
}

void SharedSweepResultStore::put(const std::string& signature,
                                 const ServingMetrics& metrics) {
  const std::uint64_t hash = sweep_signature_hash(signature);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry>& chain = entries_[hash];
  for (const Entry& entry : chain) {
    if (entry.signature == signature) return;  // first writer wins
  }
  chain.push_back(Entry{signature, metrics});
}

std::size_t SharedSweepResultStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [hash, chain] : entries_) total += chain.size();
  return total;
}

std::int64_t SharedSweepResultStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t SharedSweepResultStore::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int resolve_sweep_threads(int requested, std::size_t num_points) {
  int threads = requested;
  if (threads <= 0) threads = parse_env_worker_count("CIMTPU_SWEEP_THREADS");
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) threads = 1;
  if (num_points < 1) num_points = 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), num_points));
}

int resolve_sweep_processes(int requested, std::size_t num_points) {
  int processes = requested;
  if (processes <= 0) {
    processes = parse_env_worker_count("CIMTPU_SWEEP_PROCESSES");
  }
  if (processes <= 0) processes = 1;  // opt-in: in-process by default
  if (num_points < 1) num_points = 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(processes), num_points));
}

#ifdef CIMTPU_SWEEP_HAS_FORK

namespace {

// Child -> parent record framing over the pipe:
//   [u64 point index][u8 status][u64 payload length][payload bytes]
// status 0: payload = serialize_metrics bytes.  1 / 2: payload = the
// describe_point-prefixed ConfigError / InternalError message.  3: any
// other exception — the concrete type cannot cross the process boundary,
// so the parent resurfaces it as an InternalError carrying what().
enum class RecordStatus : std::uint8_t {
  kOk = 0,
  kConfigError = 1,
  kInternalError = 2,
  kOtherError = 3,
};

void write_exact(int fd, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, bytes, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      _exit(112);  // parent died / pipe broke: nothing left to report to
    }
    bytes += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool read_exact(int fd, void* data, std::size_t len, bool* clean_eof) {
  auto* bytes = static_cast<char*>(data);
  bool first = true;
  while (len > 0) {
    const ssize_t n = ::read(fd, bytes, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      *clean_eof = first;  // EOF at a record boundary is the normal end
      return false;
    }
    first = false;
    bytes += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Child worker body: simulates every `stride`-th todo point starting at
// `first` and streams one record per point.  Never throws (an escaped
// exception would std::terminate the child into a confusing SIGABRT);
// never returns to the caller's stack — always _exit, so the child skips
// parent-inherited atexit handlers and stdio flushes.
[[noreturn]] void sweep_child_main(const std::vector<SweepPoint>& points,
                                   const std::vector<std::size_t>& todo,
                                   std::size_t first, std::size_t stride,
                                   const SweepOptions& options, int fd) {
  SharedStepCostCache child_costs;
  SharedStepCostCache* shared_costs =
      options.share_cost_cache ? &child_costs : nullptr;
  for (std::size_t j = first; j < todo.size(); j += stride) {
    const std::size_t i = todo[j];
    RecordStatus status = RecordStatus::kOk;
    std::string payload;
    try {
      payload = serialize_metrics(
          run_point(points[i], effective_scenario(points[i], options),
                    shared_costs));
    } catch (const ConfigError& error) {
      status = RecordStatus::kConfigError;
      payload = describe_point(points, i, error.what());
    } catch (const InternalError& error) {
      status = RecordStatus::kInternalError;
      payload = describe_point(points, i, error.what());
    } catch (const std::exception& error) {
      status = RecordStatus::kOtherError;
      payload = describe_point(points, i, error.what());
    } catch (...) {
      status = RecordStatus::kOtherError;
      payload = describe_point(points, i, "unknown exception");
    }
    const auto index = static_cast<std::uint64_t>(i);
    const auto length = static_cast<std::uint64_t>(payload.size());
    const auto status_byte = static_cast<std::uint8_t>(status);
    write_exact(fd, &index, sizeof(index));
    write_exact(fd, &status_byte, sizeof(status_byte));
    write_exact(fd, &length, sizeof(length));
    write_exact(fd, payload.data(), payload.size());
  }
  ::close(fd);
  _exit(0);
}

// Fork fan-out: `processes` children each simulate a round-robin slice of
// the not-yet-resolved points and stream binary metrics back.  The parent
// drains each pipe to EOF in turn (children are independent, so a child
// blocked on its full pipe simply waits until its turn — no deadlock
// cycle exists) and reaps every child before surfacing errors.
void run_sweep_forked(const std::vector<SweepPoint>& points,
                      const std::vector<std::size_t>& todo,
                      const SweepOptions& options, int processes,
                      std::vector<ServingMetrics>* results,
                      std::vector<std::exception_ptr>* errors) {
  struct Child {
    pid_t pid = -1;
    int fd = -1;
  };
  std::vector<Child> children;
  children.reserve(static_cast<std::size_t>(processes));
  for (int k = 0; k < processes; ++k) {
    int fds[2];
    CIMTPU_CHECK(::pipe(fds) == 0);
    const pid_t pid = ::fork();
    CIMTPU_CHECK(pid >= 0);
    if (pid == 0) {
      ::close(fds[0]);
      for (const Child& sibling : children) ::close(sibling.fd);
      sweep_child_main(points, todo, static_cast<std::size_t>(k),
                       static_cast<std::size_t>(processes), options, fds[1]);
    }
    ::close(fds[1]);
    children.push_back(Child{pid, fds[0]});
  }

  std::vector<char> received(points.size(), 0);
  bool truncated = false;
  for (const Child& child : children) {
    for (;;) {
      std::uint64_t index = 0;
      std::uint8_t status_byte = 0;
      std::uint64_t length = 0;
      bool clean_eof = false;
      if (!read_exact(child.fd, &index, sizeof(index), &clean_eof)) {
        truncated = truncated || !clean_eof;
        break;
      }
      std::string payload;
      if (!read_exact(child.fd, &status_byte, sizeof(status_byte),
                      &clean_eof) ||
          !read_exact(child.fd, &length, sizeof(length), &clean_eof)) {
        truncated = true;
        break;
      }
      payload.resize(static_cast<std::size_t>(length));
      if (length > 0 &&
          !read_exact(child.fd, &payload[0], payload.size(), &clean_eof)) {
        truncated = true;
        break;
      }
      CIMTPU_CHECK(index < points.size());
      received[index] = 1;
      switch (static_cast<RecordStatus>(status_byte)) {
        case RecordStatus::kOk:
          (*results)[index] = deserialize_metrics(payload);
          break;
        case RecordStatus::kConfigError:
          (*errors)[index] = std::make_exception_ptr(ConfigError(payload));
          break;
        case RecordStatus::kInternalError:
        case RecordStatus::kOtherError:
        default:
          (*errors)[index] = std::make_exception_ptr(InternalError(payload));
          break;
      }
    }
    ::close(child.fd);
  }

  bool died = false;
  for (const Child& child : children) {
    int wstatus = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(child.pid, &wstatus, 0);
    } while (reaped < 0 && errno == EINTR);
    died = died || reaped < 0 || !WIFEXITED(wstatus) ||
           WEXITSTATUS(wstatus) != 0;
  }
  // A worker that died mid-point leaves its remaining slice unreported;
  // surface that ahead of per-point errors (the grid-order rethrow would
  // otherwise silently return half-empty metrics for the missing points).
  if (died || truncated) {
    throw InternalError(
        "sweep worker process died or its result stream was truncated");
  }
  for (std::size_t j = 0; j < todo.size(); ++j) {
    CIMTPU_CHECK(received[todo[j]] == 1);
  }
}

}  // namespace

#endif  // CIMTPU_SWEEP_HAS_FORK

std::vector<ServingMetrics> run_sweep(const std::vector<SweepPoint>& points,
                                      const SweepOptions& options) {
  for (const SweepPoint& point : points) {
    CIMTPU_CHECK(point.requests != nullptr);
  }
  std::vector<ServingMetrics> results(points.size());
  std::vector<std::exception_ptr> errors(points.size());
  SharedStepCostCache local_shared;
  SharedStepCostCache* shared_costs = nullptr;
  if (options.share_cost_cache) {
    shared_costs = options.shared_cache != nullptr ? options.shared_cache
                                                   : &local_shared;
  }

  // Result-memo pre-pass, shared by both drivers: resolve every
  // memoizable point's signature up front, pull store hits, and collapse
  // WITHIN-sweep duplicates onto their first (grid-order) occurrence —
  // deterministic, unlike racing workers into the store.  Traced points
  // (after force_trace_off) bypass: they exist for their event/sample
  // output, which a metrics replay would skip.  signatures[i] empty =
  // point i is not memoizable.
  SharedSweepResultStore* memo = options.result_store;
  std::vector<std::string> signatures(points.size());
  std::vector<char> resolved(points.size(), 0);
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;  // (i, first)
  if (memo != nullptr) {
    std::unordered_map<std::string, std::size_t> first_occurrence;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ServingScenario scenario = effective_scenario(points[i], options);
      if (scenario_traced(scenario)) continue;
      SweepPoint effective = points[i];
      effective.scenario = scenario;
      signatures[i] = sweep_point_signature(effective);
      if (memo->try_get(signatures[i], &results[i])) {
        resolved[i] = 1;
        continue;
      }
      const auto [it, inserted] = first_occurrence.emplace(signatures[i], i);
      if (!inserted) {
        duplicates.emplace_back(i, it->second);
        resolved[i] = 1;  // filled by copy after the first occurrence runs
      }
    }
  }
  std::vector<std::size_t> todo;
  todo.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!resolved[i]) todo.push_back(i);
  }

  const int processes = resolve_sweep_processes(options.processes, todo.size());
#ifdef CIMTPU_SWEEP_HAS_FORK
  if (processes > 1 && !todo.empty()) {
    run_sweep_forked(points, todo, options, processes, &results, &errors);
  } else
#else
  // Non-POSIX: no fork — processes requests fall through to the thread
  // driver (bit-identical metrics either way; SweepOptions documents the
  // knob as POSIX-only).
  (void)processes;
#endif
  {
    // Work stealing over the unresolved points: each worker claims the
    // next unclaimed index.  results[i] is written only by the worker
    // that claimed i, so no synchronization beyond the claim counter is
    // needed, and result order is the grid order by construction.
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t j = next.fetch_add(1);
        if (j >= todo.size()) return;
        const std::size_t i = todo[j];
        try {
          results[i] = run_point(points[i],
                                 effective_scenario(points[i], options),
                                 shared_costs);
        } catch (const ConfigError& error) {
          errors[i] = std::make_exception_ptr(
              ConfigError(describe_point(points, i, error.what())));
        } catch (const InternalError& error) {
          errors[i] = std::make_exception_ptr(
              InternalError(describe_point(points, i, error.what())));
        } catch (...) {
          errors[i] = std::current_exception();  // preserved as-is
        }
      }
    };

    const int threads = resolve_sweep_threads(options.threads, todo.size());
    if (threads <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      try {
        for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
      } catch (...) {
        // Thread spawn failed mid-pool (e.g. process thread limit): the
        // already-started workers drain the whole grid via the claim
        // counter, so join them — destroying a joinable thread would
        // std::terminate — then surface the spawn failure.
        for (std::thread& thread : pool) thread.join();
        throw;
      }
      for (std::thread& thread : pool) thread.join();
    }
  }

  // Fill within-sweep duplicates from their first occurrence (the pair
  // shares one signature, so metrics are identical by determinism); a
  // failed first occurrence propagates its error — the grid-order rethrow
  // below surfaces the FIRST index either way.
  for (const auto& [i, first] : duplicates) {
    if (errors[first]) {
      errors[i] = errors[first];
    } else {
      results[i] = results[first];
    }
  }
  // Store freshly-simulated memoizable results for later sweeps.
  if (memo != nullptr) {
    for (const std::size_t i : todo) {
      if (!signatures[i].empty() && !errors[i]) {
        memo->put(signatures[i], results[i]);
      }
    }
  }

  // Surface failures deterministically: the first failing point in grid
  // order, independent of worker interleaving.
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

void ServingSweep::validate() const {
  CIMTPU_CONFIG_CHECK(!arrival_rates.empty(), "sweep needs >= 1 arrival rate");
  CIMTPU_CONFIG_CHECK(!models.empty(), "sweep needs >= 1 model");
  CIMTPU_CONFIG_CHECK(!chip_counts.empty(), "sweep needs >= 1 chip count");
  CIMTPU_CONFIG_CHECK(!policies.empty(), "sweep needs >= 1 policy");
  CIMTPU_CONFIG_CHECK(!admission_policies.empty(),
                      "sweep needs >= 1 admission policy");
  CIMTPU_CONFIG_CHECK(!kv_block_tokens.empty(),
                      "sweep needs >= 1 kv_block_tokens value");
  CIMTPU_CONFIG_CHECK(!prefix_caching.empty(),
                      "sweep needs >= 1 prefix_caching value");
  for (double rate : arrival_rates) {
    CIMTPU_CONFIG_CHECK(rate > 0, "arrival rate must be positive");
  }
  for (std::int64_t block : kv_block_tokens) {
    CIMTPU_CONFIG_CHECK(block >= 0,
                        "kv_block_tokens axis values must be >= 0 (0 = "
                        "inherit base), got " << block);
  }
  for (int caching : prefix_caching) {
    CIMTPU_CONFIG_CHECK(caching >= -1 && caching <= 1,
                        "prefix_caching axis values must be -1 (inherit), "
                        "0 (off), or 1 (on), got " << caching);
  }
  CIMTPU_CONFIG_CHECK(!fault_rates.empty(),
                      "sweep needs >= 1 fault_rates value");
  CIMTPU_CONFIG_CHECK(!fault_recovery.empty(),
                      "sweep needs >= 1 fault_recovery value");
  for (double rate : fault_rates) {
    CIMTPU_CONFIG_CHECK(rate == -1 || rate >= 0,
                        "fault_rates axis values must be -1 (inherit) or a "
                        ">= 0 rate scale, got " << rate);
  }
  for (int recovery : fault_recovery) {
    CIMTPU_CONFIG_CHECK(recovery >= -1 && recovery <= 1,
                        "fault_recovery axis values must be -1 (inherit), "
                        "0 (off), or 1 (on), got " << recovery);
  }
  CIMTPU_CONFIG_CHECK(!replicas.empty(), "sweep needs >= 1 replicas value");
  CIMTPU_CONFIG_CHECK(!router_policies.empty(),
                      "sweep needs >= 1 router policy");
  CIMTPU_CONFIG_CHECK(!disaggregation.empty(),
                      "sweep needs >= 1 disaggregation value");
  for (int count : replicas) {
    CIMTPU_CONFIG_CHECK(count >= 0,
                        "replicas axis values must be >= 0 (0 = single "
                        "engine), got " << count);
  }
  for (int mode : disaggregation) {
    CIMTPU_CONFIG_CHECK(mode >= -1 && mode <= 1,
                        "disaggregation axis values must be -1 (inherit), "
                        "0 (colocated), or 1 (disaggregated), got " << mode);
  }
  CIMTPU_CONFIG_CHECK(cluster_prefill_replicas >= 1,
                      "cluster_prefill_replicas must be >= 1, got "
                          << cluster_prefill_replicas);
}

std::vector<SweepCellResult> run_serving_sweep(const ServingSweep& sweep,
                                               const SweepOptions& options) {
  sweep.validate();

  // One trace per arrival rate, shared across that rate's cells: traffic
  // depends only on the stream spec, never on the deployment under test.
  std::vector<std::vector<Request>> traces;
  traces.reserve(sweep.arrival_rates.size());
  for (double rate : sweep.arrival_rates) {
    RequestStreamConfig stream = sweep.stream;
    stream.arrival_rate = rate;
    traces.push_back(generate_requests(stream));
  }

  std::vector<SweepPoint> points;
  std::vector<SweepCellResult> cells;
  const std::size_t grid_size =
      sweep.arrival_rates.size() * sweep.models.size() *
      sweep.chip_counts.size() * sweep.policies.size() *
      sweep.admission_policies.size() * sweep.kv_block_tokens.size() *
      sweep.prefix_caching.size() * sweep.fault_rates.size() *
      sweep.fault_recovery.size() * sweep.replicas.size() *
      sweep.router_policies.size() * sweep.disaggregation.size();
  points.reserve(grid_size);
  cells.reserve(grid_size);
  for (std::size_t r = 0; r < sweep.arrival_rates.size(); ++r) {
    for (const models::TransformerConfig& model : sweep.models) {
      for (int chips : sweep.chip_counts) {
        for (EvictionPolicy policy : sweep.policies) {
          for (const std::string& admission : sweep.admission_policies) {
            for (std::int64_t block_axis : sweep.kv_block_tokens) {
              for (int caching_axis : sweep.prefix_caching) {
               for (double fault_axis : sweep.fault_rates) {
                for (int recovery_axis : sweep.fault_recovery) {
                 for (int replica_axis : sweep.replicas) {
                  for (const std::string& router_axis :
                       sweep.router_policies) {
                   for (int disagg_axis : sweep.disaggregation) {
                // Sentinels inherit the base scenario's paged-KV knobs so
                // grids that never mention the new axes expand unchanged.
                const std::int64_t block =
                    block_axis == 0 ? sweep.base.scheduler.kv_block_tokens
                                    : block_axis;
                const bool caching =
                    caching_axis < 0
                        ? sweep.base.scheduler.enable_prefix_cache
                        : caching_axis > 0;
                SweepPoint point;
                point.scenario = sweep.base;
                point.scenario.model = model;
                point.scenario.chips = chips;
                point.scenario.eviction = policy;
                point.scenario.scheduler.admission.policy = admission;
                point.scenario.scheduler.kv_block_tokens = block;
                point.scenario.scheduler.enable_prefix_cache = caching;
                // Resilience axes: a non-sentinel fault rate scales the
                // base storm's three process rates (0 turns the subsystem
                // off for the cell); a non-sentinel recovery value
                // overrides the recovery policy.
                if (fault_axis >= 0) {
                  point.scenario.fault.stall_rate_per_s *= fault_axis;
                  point.scenario.fault.kv_loss_rate_per_s *= fault_axis;
                  point.scenario.fault.device_failure_rate_per_s *= fault_axis;
                  if (fault_axis == 0) point.scenario.fault.enabled = false;
                }
                if (recovery_axis >= 0) {
                  point.scenario.fault.recovery_enabled = recovery_axis > 0;
                }
                // Cluster axes: the 0 / "" / -1 sentinels leave the point
                // on the single-engine path with pre-cluster labels.
                point.replicas = replica_axis;
                if (!router_axis.empty()) point.router_policy = router_axis;
                point.disaggregated = disagg_axis > 0;
                point.prefill_replicas = sweep.cluster_prefill_replicas;
                point.requests = &traces[r];
                std::ostringstream label;
                label << "rate=" << sweep.arrival_rates[r]
                      << " model=" << model.name << '/'
                      << ir::dtype_name(model.dtype) << " chips=" << chips
                      << " policy=" << eviction_policy_name(policy)
                      << " admission=" << admission << " block=" << block
                      << " prefix_cache=" << (caching ? "on" : "off");
                // Label segments appear only for non-sentinel resilience
                // cells, so pre-fault grids keep byte-identical labels.
                if (fault_axis >= 0) label << " fault_rate=" << fault_axis;
                if (recovery_axis >= 0) {
                  label << " recovery=" << (recovery_axis > 0 ? "on" : "off");
                }
                // Cluster segments likewise appear only on cluster cells.
                if (replica_axis > 0) label << " replicas=" << replica_axis;
                if (!router_axis.empty()) label << " router=" << router_axis;
                if (disagg_axis >= 0) {
                  label << " disagg=" << (disagg_axis > 0 ? "on" : "off");
                }
                point.label = label.str();
                // Traced grids write one file set per cell: derive each
                // point's trace label from its grid coordinates (base label
                // prefix kept) so cells never overwrite each other's files.
                if ((point.scenario.trace.enabled ||
                     point.scenario.trace.sample_interval > 0) &&
                    !point.scenario.trace.dir.empty()) {
                  point.scenario.trace.label =
                      point.scenario.trace.label + "." +
                      sanitize_trace_label(point.label);
                }
                points.push_back(std::move(point));

                SweepCellResult cell;
                cell.arrival_rate = sweep.arrival_rates[r];
                cell.model = model.name;
                cell.dtype = model.dtype;
                cell.chips = chips;
                cell.policy = policy;
                cell.admission = admission;
                cell.kv_block_tokens = block;
                cell.prefix_caching = caching;
                cell.fault_rate = fault_axis;
                cell.fault_recovery = recovery_axis;
                cell.replicas = replica_axis;
                if (replica_axis > 0) cell.router_policy = point.router_policy;
                cell.disaggregated = disagg_axis;
                cells.push_back(std::move(cell));
                   }
                  }
                 }
                }
               }
              }
            }
          }
        }
      }
    }
  }

  std::vector<ServingMetrics> results = run_sweep(points, options);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].metrics = results[i];
  }
  return cells;
}

}  // namespace cimtpu::serving
