#include "serving/sweep.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <limits>
#include <sstream>
#include <thread>

#include "common/status.h"
#include "serving/cluster.h"

namespace cimtpu::serving {

namespace {

// Runs one sweep point: single-engine when point.replicas == 0 (the
// pre-cluster path, untouched), otherwise an N-replica cluster of the
// cell's deployment shape, flattened so cluster cells sit next to
// single-engine cells in one result table.
ServingMetrics run_point(const SweepPoint& point,
                         const ServingScenario& scenario,
                         SharedStepCostCache* shared_costs) {
  if (point.replicas <= 0) {
    return run_serving(scenario, *point.requests, shared_costs);
  }
  ClusterConfig config;
  config.base = scenario;
  config.replicas.assign(
      static_cast<std::size_t>(point.replicas),
      ReplicaSpec{scenario.chips, scenario.tensor_parallel_ways});
  config.router_policy = point.router_policy;
  config.disaggregated = point.disaggregated;
  config.prefill_replicas = point.prefill_replicas;
  return flatten_cluster_metrics(
      run_serving_cluster(config, *point.requests, shared_costs));
}

}  // namespace

int resolve_sweep_threads(int requested, std::size_t num_points) {
  int threads = requested;
  if (threads <= 0) {
    if (const char* env = std::getenv("CIMTPU_SWEEP_THREADS")) {
      // Parse loudly: a malformed value silently falling back to full
      // parallelism would defeat the knob's whole purpose (pinning the
      // worker count).  0 and negatives mean "unset" by design.
      char* end = nullptr;
      errno = 0;
      const long parsed = std::strtol(env, &end, 10);
      CIMTPU_CONFIG_CHECK(end != env && *end == '\0' && errno == 0 &&
                              parsed >= std::numeric_limits<int>::min() &&
                              parsed <= std::numeric_limits<int>::max(),
                          "CIMTPU_SWEEP_THREADS='"
                              << env << "' is not a valid thread count");
      threads = static_cast<int>(parsed);
    }
  }
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) threads = 1;
  if (num_points < 1) num_points = 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), num_points));
}

std::vector<ServingMetrics> run_sweep(const std::vector<SweepPoint>& points,
                                      const SweepOptions& options) {
  for (const SweepPoint& point : points) {
    CIMTPU_CHECK(point.requests != nullptr);
  }
  std::vector<ServingMetrics> results(points.size());
  std::vector<std::exception_ptr> errors(points.size());
  SharedStepCostCache local_shared;
  SharedStepCostCache* shared_costs = nullptr;
  if (options.share_cost_cache) {
    shared_costs = options.shared_cache != nullptr ? options.shared_cache
                                                   : &local_shared;
  }

  // Work stealing over the grid: each worker claims the next unclaimed
  // point.  results[i] is written only by the worker that claimed i, so no
  // synchronization beyond the claim counter is needed, and result order
  // is the grid order by construction.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      const auto describe = [&](const char* what) {
        std::ostringstream message;
        message << "sweep point " << i;
        if (!points[i].label.empty()) message << " (" << points[i].label << ')';
        message << ": " << what;
        return message.str();
      };
      try {
        if (options.force_trace_off && (points[i].scenario.trace.enabled ||
                                        points[i].scenario.trace
                                                .sample_interval > 0)) {
          ServingScenario scenario = points[i].scenario;
          scenario.trace.enabled = false;
          scenario.trace.sample_interval = 0;
          results[i] = run_point(points[i], scenario, shared_costs);
        } else {
          results[i] = run_point(points[i], points[i].scenario, shared_costs);
        }
      } catch (const ConfigError& error) {
        errors[i] = std::make_exception_ptr(ConfigError(describe(error.what())));
      } catch (const InternalError& error) {
        errors[i] =
            std::make_exception_ptr(InternalError(describe(error.what())));
      } catch (...) {
        errors[i] = std::current_exception();  // preserved as-is (other types)
      }
    }
  };

  const int threads = resolve_sweep_threads(options.threads, points.size());
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    try {
      for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    } catch (...) {
      // Thread spawn failed mid-pool (e.g. process thread limit): the
      // already-started workers drain the whole grid via the claim
      // counter, so join them — destroying a joinable thread would
      // std::terminate — then surface the spawn failure.
      for (std::thread& thread : pool) thread.join();
      throw;
    }
    for (std::thread& thread : pool) thread.join();
  }

  // Surface failures deterministically: the first failing point in grid
  // order, independent of worker interleaving.
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

void ServingSweep::validate() const {
  CIMTPU_CONFIG_CHECK(!arrival_rates.empty(), "sweep needs >= 1 arrival rate");
  CIMTPU_CONFIG_CHECK(!models.empty(), "sweep needs >= 1 model");
  CIMTPU_CONFIG_CHECK(!chip_counts.empty(), "sweep needs >= 1 chip count");
  CIMTPU_CONFIG_CHECK(!policies.empty(), "sweep needs >= 1 policy");
  CIMTPU_CONFIG_CHECK(!admission_policies.empty(),
                      "sweep needs >= 1 admission policy");
  CIMTPU_CONFIG_CHECK(!kv_block_tokens.empty(),
                      "sweep needs >= 1 kv_block_tokens value");
  CIMTPU_CONFIG_CHECK(!prefix_caching.empty(),
                      "sweep needs >= 1 prefix_caching value");
  for (double rate : arrival_rates) {
    CIMTPU_CONFIG_CHECK(rate > 0, "arrival rate must be positive");
  }
  for (std::int64_t block : kv_block_tokens) {
    CIMTPU_CONFIG_CHECK(block >= 0,
                        "kv_block_tokens axis values must be >= 0 (0 = "
                        "inherit base), got " << block);
  }
  for (int caching : prefix_caching) {
    CIMTPU_CONFIG_CHECK(caching >= -1 && caching <= 1,
                        "prefix_caching axis values must be -1 (inherit), "
                        "0 (off), or 1 (on), got " << caching);
  }
  CIMTPU_CONFIG_CHECK(!fault_rates.empty(),
                      "sweep needs >= 1 fault_rates value");
  CIMTPU_CONFIG_CHECK(!fault_recovery.empty(),
                      "sweep needs >= 1 fault_recovery value");
  for (double rate : fault_rates) {
    CIMTPU_CONFIG_CHECK(rate == -1 || rate >= 0,
                        "fault_rates axis values must be -1 (inherit) or a "
                        ">= 0 rate scale, got " << rate);
  }
  for (int recovery : fault_recovery) {
    CIMTPU_CONFIG_CHECK(recovery >= -1 && recovery <= 1,
                        "fault_recovery axis values must be -1 (inherit), "
                        "0 (off), or 1 (on), got " << recovery);
  }
  CIMTPU_CONFIG_CHECK(!replicas.empty(), "sweep needs >= 1 replicas value");
  CIMTPU_CONFIG_CHECK(!router_policies.empty(),
                      "sweep needs >= 1 router policy");
  CIMTPU_CONFIG_CHECK(!disaggregation.empty(),
                      "sweep needs >= 1 disaggregation value");
  for (int count : replicas) {
    CIMTPU_CONFIG_CHECK(count >= 0,
                        "replicas axis values must be >= 0 (0 = single "
                        "engine), got " << count);
  }
  for (int mode : disaggregation) {
    CIMTPU_CONFIG_CHECK(mode >= -1 && mode <= 1,
                        "disaggregation axis values must be -1 (inherit), "
                        "0 (colocated), or 1 (disaggregated), got " << mode);
  }
  CIMTPU_CONFIG_CHECK(cluster_prefill_replicas >= 1,
                      "cluster_prefill_replicas must be >= 1, got "
                          << cluster_prefill_replicas);
}

std::vector<SweepCellResult> run_serving_sweep(const ServingSweep& sweep,
                                               const SweepOptions& options) {
  sweep.validate();

  // One trace per arrival rate, shared across that rate's cells: traffic
  // depends only on the stream spec, never on the deployment under test.
  std::vector<std::vector<Request>> traces;
  traces.reserve(sweep.arrival_rates.size());
  for (double rate : sweep.arrival_rates) {
    RequestStreamConfig stream = sweep.stream;
    stream.arrival_rate = rate;
    traces.push_back(generate_requests(stream));
  }

  std::vector<SweepPoint> points;
  std::vector<SweepCellResult> cells;
  const std::size_t grid_size =
      sweep.arrival_rates.size() * sweep.models.size() *
      sweep.chip_counts.size() * sweep.policies.size() *
      sweep.admission_policies.size() * sweep.kv_block_tokens.size() *
      sweep.prefix_caching.size() * sweep.fault_rates.size() *
      sweep.fault_recovery.size() * sweep.replicas.size() *
      sweep.router_policies.size() * sweep.disaggregation.size();
  points.reserve(grid_size);
  cells.reserve(grid_size);
  for (std::size_t r = 0; r < sweep.arrival_rates.size(); ++r) {
    for (const models::TransformerConfig& model : sweep.models) {
      for (int chips : sweep.chip_counts) {
        for (EvictionPolicy policy : sweep.policies) {
          for (const std::string& admission : sweep.admission_policies) {
            for (std::int64_t block_axis : sweep.kv_block_tokens) {
              for (int caching_axis : sweep.prefix_caching) {
               for (double fault_axis : sweep.fault_rates) {
                for (int recovery_axis : sweep.fault_recovery) {
                 for (int replica_axis : sweep.replicas) {
                  for (const std::string& router_axis :
                       sweep.router_policies) {
                   for (int disagg_axis : sweep.disaggregation) {
                // Sentinels inherit the base scenario's paged-KV knobs so
                // grids that never mention the new axes expand unchanged.
                const std::int64_t block =
                    block_axis == 0 ? sweep.base.scheduler.kv_block_tokens
                                    : block_axis;
                const bool caching =
                    caching_axis < 0
                        ? sweep.base.scheduler.enable_prefix_cache
                        : caching_axis > 0;
                SweepPoint point;
                point.scenario = sweep.base;
                point.scenario.model = model;
                point.scenario.chips = chips;
                point.scenario.eviction = policy;
                point.scenario.scheduler.admission.policy = admission;
                point.scenario.scheduler.kv_block_tokens = block;
                point.scenario.scheduler.enable_prefix_cache = caching;
                // Resilience axes: a non-sentinel fault rate scales the
                // base storm's three process rates (0 turns the subsystem
                // off for the cell); a non-sentinel recovery value
                // overrides the recovery policy.
                if (fault_axis >= 0) {
                  point.scenario.fault.stall_rate_per_s *= fault_axis;
                  point.scenario.fault.kv_loss_rate_per_s *= fault_axis;
                  point.scenario.fault.device_failure_rate_per_s *= fault_axis;
                  if (fault_axis == 0) point.scenario.fault.enabled = false;
                }
                if (recovery_axis >= 0) {
                  point.scenario.fault.recovery_enabled = recovery_axis > 0;
                }
                // Cluster axes: the 0 / "" / -1 sentinels leave the point
                // on the single-engine path with pre-cluster labels.
                point.replicas = replica_axis;
                if (!router_axis.empty()) point.router_policy = router_axis;
                point.disaggregated = disagg_axis > 0;
                point.prefill_replicas = sweep.cluster_prefill_replicas;
                point.requests = &traces[r];
                std::ostringstream label;
                label << "rate=" << sweep.arrival_rates[r]
                      << " model=" << model.name << '/'
                      << ir::dtype_name(model.dtype) << " chips=" << chips
                      << " policy=" << eviction_policy_name(policy)
                      << " admission=" << admission << " block=" << block
                      << " prefix_cache=" << (caching ? "on" : "off");
                // Label segments appear only for non-sentinel resilience
                // cells, so pre-fault grids keep byte-identical labels.
                if (fault_axis >= 0) label << " fault_rate=" << fault_axis;
                if (recovery_axis >= 0) {
                  label << " recovery=" << (recovery_axis > 0 ? "on" : "off");
                }
                // Cluster segments likewise appear only on cluster cells.
                if (replica_axis > 0) label << " replicas=" << replica_axis;
                if (!router_axis.empty()) label << " router=" << router_axis;
                if (disagg_axis >= 0) {
                  label << " disagg=" << (disagg_axis > 0 ? "on" : "off");
                }
                point.label = label.str();
                // Traced grids write one file set per cell: derive each
                // point's trace label from its grid coordinates (base label
                // prefix kept) so cells never overwrite each other's files.
                if ((point.scenario.trace.enabled ||
                     point.scenario.trace.sample_interval > 0) &&
                    !point.scenario.trace.dir.empty()) {
                  point.scenario.trace.label =
                      point.scenario.trace.label + "." +
                      sanitize_trace_label(point.label);
                }
                points.push_back(std::move(point));

                SweepCellResult cell;
                cell.arrival_rate = sweep.arrival_rates[r];
                cell.model = model.name;
                cell.dtype = model.dtype;
                cell.chips = chips;
                cell.policy = policy;
                cell.admission = admission;
                cell.kv_block_tokens = block;
                cell.prefix_caching = caching;
                cell.fault_rate = fault_axis;
                cell.fault_recovery = recovery_axis;
                cell.replicas = replica_axis;
                if (replica_axis > 0) cell.router_policy = point.router_policy;
                cell.disaggregated = disagg_axis;
                cells.push_back(std::move(cell));
                   }
                  }
                 }
                }
               }
              }
            }
          }
        }
      }
    }
  }

  std::vector<ServingMetrics> results = run_sweep(points, options);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].metrics = results[i];
  }
  return cells;
}

}  // namespace cimtpu::serving
