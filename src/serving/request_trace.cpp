#include "serving/request_trace.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/status.h"

namespace cimtpu::serving {

namespace {

/// %.17g round-trips every finite double bit for bit through strtod.
/// Non-finite values are a config error, not a serialization format:
/// "nan"/"inf" would round-trip into a trace no simulator run can have
/// produced (arrivals and deadlines are always finite), so both sides
/// reject them loudly.
void append_double(std::string* out, double value) {
  CIMTPU_CONFIG_CHECK(std::isfinite(value),
                      "request trace values must be finite, got " << value);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

void append_int(std::string* out, std::int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  out->append(buffer);
}

/// Minimal parser state over one JSONL line.  The grammar is a single flat
/// object of string keys and number values — no nesting, strings, bools —
/// so a hand scanner beats pulling in a JSON dependency.
struct LineScanner {
  const char* cursor;
  const char* line_start;
  std::size_t line_number;

  void skip_spaces() {
    while (*cursor == ' ' || *cursor == '\t') ++cursor;
  }

  [[noreturn]] void fail(const std::string& what) const {
    CIMTPU_CONFIG_CHECK(false, "request trace line "
                                   << line_number << ": " << what
                                   << " (at byte "
                                   << (cursor - line_start) << ")");
    std::abort();  // unreachable: CONFIG_CHECK(false) throws
  }

  void expect(char c) {
    skip_spaces();
    if (*cursor != c) fail(std::string("expected '") + c + "'");
    ++cursor;
  }

  bool consume(char c) {
    skip_spaces();
    if (*cursor != c) return false;
    ++cursor;
    return true;
  }

  std::string key() {
    expect('"');
    const char* begin = cursor;
    while (*cursor != '"' && *cursor != '\0') ++cursor;
    if (*cursor != '"') fail("unterminated key");
    std::string name(begin, cursor);
    ++cursor;
    expect(':');
    return name;
  }

  double number() {
    skip_spaces();
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(cursor, &end);
    if (end == cursor || errno == ERANGE) fail("expected a number");
    // strtod accepts "nan"/"inf"/"infinity": reject them here rather than
    // letting a non-finite arrival time or deadline round-trip into the
    // scheduler, where it would poison every comparison downstream.
    if (!std::isfinite(value)) fail("non-finite number");
    cursor = end;
    return value;
  }
};

Request parse_line(const char* line, std::size_t line_number) {
  LineScanner scan{line, line, line_number};
  Request request;
  scan.expect('{');
  if (!scan.consume('}')) {
    do {
      const std::string key = scan.key();
      const double value = scan.number();
      const auto as_int = [&] { return static_cast<std::int64_t>(value); };
      if (key == "id") request.id = as_int();
      else if (key == "arrival_s") request.arrival_time = value;
      else if (key == "prompt") request.prompt_len = as_int();
      else if (key == "output") request.output_len = as_int();
      else if (key == "priority") request.priority = as_int();
      else if (key == "tenant") request.tenant_id = as_int();
      else if (key == "prefix_id") request.prefix_id = as_int();
      else if (key == "prefix_len") request.prefix_len = as_int();
      else if (key == "ttft_deadline_s") request.ttft_deadline = value;
      else if (key == "tpot_deadline_s") request.tpot_deadline = value;
      else scan.fail("unknown key \"" + key + "\"");
    } while (scan.consume(','));
    scan.expect('}');
  }
  scan.skip_spaces();
  if (*scan.cursor != '\0') scan.fail("trailing garbage after object");
  return request;
}

}  // namespace

std::string request_trace_jsonl(const std::vector<Request>& requests) {
  std::string out;
  out.reserve(requests.size() * 96);
  for (const Request& request : requests) {
    out += "{\"id\": ";
    append_int(&out, request.id);
    out += ", \"arrival_s\": ";
    append_double(&out, request.arrival_time);
    out += ", \"prompt\": ";
    append_int(&out, request.prompt_len);
    out += ", \"output\": ";
    append_int(&out, request.output_len);
    out += ", \"priority\": ";
    append_int(&out, request.priority);
    out += ", \"tenant\": ";
    append_int(&out, request.tenant_id);
    out += ", \"prefix_id\": ";
    append_int(&out, request.prefix_id);
    out += ", \"prefix_len\": ";
    append_int(&out, request.prefix_len);
    out += ", \"ttft_deadline_s\": ";
    append_double(&out, request.ttft_deadline);
    out += ", \"tpot_deadline_s\": ";
    append_double(&out, request.tpot_deadline);
    out += "}\n";
  }
  return out;
}

std::vector<Request> parse_request_trace_jsonl(const std::string& text) {
  std::vector<Request> requests;
  std::size_t line_number = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    ++line_number;
    std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    // Tolerate blank lines and \r\n traces from other platforms.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t') { blank = false; break; }
    }
    if (blank) continue;
    requests.push_back(parse_line(line.c_str(), line_number));
    if (requests.size() > 1) {
      const Request& prev = requests[requests.size() - 2];
      const Request& curr = requests.back();
      CIMTPU_CONFIG_CHECK(
          curr.arrival_time >= prev.arrival_time,
          "request trace line " << line_number
                                << ": arrivals out of order ("
                                << curr.arrival_time << " after "
                                << prev.arrival_time
                                << "); run_serving replays sorted traces");
    }
  }
  return requests;
}

void save_request_trace(const std::string& path,
                        const std::vector<Request>& requests) {
  std::ofstream file(path, std::ios::binary);
  CIMTPU_CONFIG_CHECK(file.good(),
                      "cannot open request trace for writing: " << path);
  const std::string text = request_trace_jsonl(requests);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  file.flush();
  CIMTPU_CONFIG_CHECK(file.good(),
                      "failed writing request trace: " << path);
}

std::vector<Request> load_request_trace(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  CIMTPU_CONFIG_CHECK(file.good(),
                      "cannot open request trace for reading: " << path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  CIMTPU_CONFIG_CHECK(!file.bad(), "failed reading request trace: " << path);
  return parse_request_trace_jsonl(buffer.str());
}

}  // namespace cimtpu::serving
