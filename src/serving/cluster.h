#pragma once
// Cluster-scale serving: N replica engines behind a pluggable router, with
// optional DistServe-style prefill/decode disaggregation and Mooncake-style
// block-granular KV streaming over the modeled ICI fabric.
//
// Each replica is its own ServingEngine (serving_sim.h) — its own seeded
// scheduler, paged-KV manager, fault processes, and discrete-event clock —
// either a pipeline-parallel deployment (ReplicaSpec::chips stages) or a
// tensor-parallel one (ReplicaSpec::tensor_parallel_ways shards, finally
// dispatching the parallel/multi_chip.h TP model from serving and admitting
// models whose full weights exceed one chip's HBM).  The cluster driver
// advances the replicas on ONE discrete-event timeline: every router
// decision happens at the request's arrival instant with all candidate
// replicas pumped to that instant, so load-aware policies see the loads a
// real router would.
//
// Router policies are string-keyed behind a registry mirroring
// AdmissionPolicy (serving/admission_policy.h): "round_robin",
// "least_loaded" (queued + resident tokens), "prefix_affinity" (requests
// sharing a Request::prefix_id stick to the replica whose prefix cache is
// warm), and "tenant_sticky".  register_router_policy adds custom ones.
//
// Disaggregated mode dedicates the first `prefill_replicas` replicas to
// prefill: a request's prompt runs there (as an output_len=1 clone whose
// single emission IS the request's first token), then its finished KV
// blocks stream to a router-chosen decode replica with transfer time costed
// per block through IciFabric::p2p_time — overlapping with the decode
// replica's ongoing steps, which only see the request once the last block
// lands (ServingEngine::inject_prefilled).  Stitched request metrics (TTFT
// from the prefill side, completion from the decode side) land in the
// cluster rollup next to per-replica ServingMetrics, Jain-across-replicas
// imbalance, KV-transfer totals, and "cluster.*" registry keys.
//
// BIT-IDENTITY CONTRACT: one replica + "round_robin" + colocated is the
// single-engine path — run_serving_cluster defers to the same
// inject/pump/drain sequence run_serving performs, produces the identical
// ServingMetrics (all golden pins), and emits no kRoute/kKvTransfer events,
// so trace files and registry JSON are byte-identical too.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serving/serving_sim.h"

namespace cimtpu::serving {

/// One replica's deployment shape.  Exactly one parallelism axis may
/// exceed 1: `chips` > 1 is a pipeline (layers split across stages),
/// `tensor_parallel_ways` > 1 a Megatron-style TP group (heads/FFN split,
/// two ring all-reduces per layer per step, KV budget spanning all
/// shards' HBM headroom).
struct ReplicaSpec {
  int chips = 1;
  int tensor_parallel_ways = 1;
};

/// Cluster deployment description.  `base` is the per-replica scenario
/// prototype: every replica reuses its model / scheduler / eviction /
/// trace / fault configuration, with chips and tensor_parallel_ways
/// overridden per ReplicaSpec.
struct ClusterConfig {
  ServingScenario base;
  std::vector<ReplicaSpec> replicas = {ReplicaSpec{}};

  /// Registry-keyed RouterPolicy name (see make_router_policy).
  std::string router_policy = "round_robin";

  /// DistServe-style prefill/decode disaggregation: the first
  /// `prefill_replicas` replicas run prompts only, the rest decode only,
  /// and finished prompt KV streams between them block-by-block over the
  /// base chip config's ICI fabric.  Requires at least one replica on
  /// each side.  The router policy governs the DECODE side; prefill
  /// replicas take arrivals round-robin.
  bool disaggregated = false;
  int prefill_replicas = 1;

  void validate() const;
};

/// Load snapshot of one replica at a routing instant.
struct ReplicaLoad {
  /// Prompt + output tokens of every request injected into the replica
  /// and not yet finished or shed — queued and resident work together,
  /// the "queued+resident tokens" signal least_loaded balances on.
  std::int64_t outstanding_tokens = 0;
};

/// A routing decision maker.  Stateful (stickiness, counters) and owned
/// by one cluster run; `route` returns the replica index in [0, n) for a
/// request, given per-replica loads snapshotted at the routing instant.
class RouterPolicy {
 public:
  virtual ~RouterPolicy() = default;
  virtual int route(const Request& request,
                    const std::vector<ReplicaLoad>& loads) = 0;
};

// --- Registry (mirrors serving/admission_policy.h) ---------------------------

using RouterPolicyFactory =
    std::function<std::unique_ptr<RouterPolicy>(int num_replicas)>;

/// Registers (or replaces) a router policy under `name`.
void register_router_policy(const std::string& name,
                            RouterPolicyFactory factory);

/// Registered names, sorted.
std::vector<std::string> router_policy_names();

/// Instantiates the policy registered under `name` for `num_replicas`
/// replicas.  Throws ConfigError listing the registered names when the
/// name is unknown.
std::unique_ptr<RouterPolicy> make_router_policy(const std::string& name,
                                                 int num_replicas);

// --- Cluster rollup ----------------------------------------------------------

/// Per-replica ServingMetrics plus the stitched cluster-level view.  In
/// disaggregated mode the per-replica rows describe the CLONES each side
/// ran (a prefill replica's completions are first tokens); the stitched
/// fields below always describe the ORIGINAL requests end to end.
struct ClusterMetrics {
  int replicas = 0;
  int total_chips = 0;  ///< sum over replicas of chips x tp_ways
  bool disaggregated = false;
  std::vector<ServingMetrics> replica_metrics;

  // Stitched request-level rollup (original requests, cluster-wide).
  std::int64_t num_requests = 0;
  std::int64_t arrived = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t generated_tokens = 0;
  Seconds makespan = 0;  ///< latest completion across the cluster
  LatencySummary ttft;
  LatencySummary tpot;
  LatencySummary e2e;
  double goodput_tokens_per_second = 0;
  std::int64_t slo_met = 0;
  double slo_attainment = 1.0;
  double availability = 1.0;

  /// Cluster-wide prefix economics: summed scheduler counters, so the hit
  /// rate reflects what affinity routing actually preserved across the
  /// fleet (round-robin scattering a prefix family across replicas cools
  /// every cache; affinity keeps each family warm on one).
  double prefix_hit_rate = 0;

  /// Imbalance: Jain's fairness index over per-replica generated tokens
  /// (1.0 = perfectly even, 1/N = one replica did everything).  Computed
  /// over SERVING replicas only (decode side in disaggregated mode).
  double jain_across_replicas = 1.0;
  std::vector<double> replica_utilization;  ///< per replica, mxu_utilization

  // Disaggregation accounting (all 0 when colocated).
  std::int64_t kv_transfer_count = 0;   ///< streamed prompts
  std::int64_t kv_transfer_blocks = 0;  ///< KV blocks moved
  Bytes kv_transfer_bytes = 0;
  Seconds kv_transfer_seconds = 0;  ///< summed per-transfer link time

  /// "cluster.*" keys plus every replica's headline gauges.
  MetricsRegistry registry;

  double sim_wall_seconds = 0;  ///< non-deterministic (excluded from pins)
};

/// Runs `requests` (arrival-sorted, same contract as run_serving) through
/// the cluster.  With one replica, "round_robin", and colocated mode the
/// result's replica_metrics[0] is bit-identical to
/// run_serving(config.base, requests, ...).  `trace_out`, when tracing is
/// enabled, receives REPLICA 0's trace for the single-replica path
/// (preserving the single-engine trace files byte for byte) and the
/// cluster's router trace (kRoute/kKvTransfer events) otherwise.
ClusterMetrics run_serving_cluster(const ClusterConfig& config,
                                   const std::vector<Request>& requests,
                                   SharedStepCostCache* shared_costs = nullptr,
                                   ServingTrace* trace_out = nullptr);

/// Collapses a cluster rollup into one ServingMetrics for drivers that
/// compare cluster cells next to single-engine cells (the sweep): the
/// stitched request-level fields, summed step/energy counters, the total
/// chip count, and the cluster registry.
ServingMetrics flatten_cluster_metrics(ClusterMetrics&& cluster);

}  // namespace cimtpu::serving
