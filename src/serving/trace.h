#pragma once
// Opt-in per-request event tracing for the serving simulator, in the
// spirit of vLLM's request-level metrics and the timeline analyses the
// chunked-prefill / disaggregation papers are argued from: every request
// lifecycle transition (arrive, admit, prefix hit, prefill chunk, first
// token, decode entry, preempt, swap out/in, finish, shed) and every
// engine step (kind, batch, latency, KV block churn) becomes a typed
// event stamped with SIMULATED time, so traces are deterministic —
// byte-identical across runs, platforms, and sweep thread counts.
//
// Three layers:
//   * TraceSink — the narrow interface the scheduler emits into.  The
//     scheduler holds a nullable pointer and guards every call, so with
//     tracing off the hot path pays one null check per transition and
//     allocates NOTHING.
//   * ServingTrace — the standard sink: an append-only event buffer plus
//     driver hooks (arrive / step bracketing / first token / finish /
//     shed) that only run_serving calls.  It also keeps the cumulative
//     per-tenant admitted-token tally the time-series sampler reads,
//     which stays on even when event recording is off (sampling without
//     tracing is a supported mode).
//   * Exporters — Chrome/Perfetto trace-event JSON (load the file in
//     https://ui.perfetto.dev or chrome://tracing: one track per request,
//     one for engine steps, counter tracks from the time-series samples)
//     and flat JSONL for scripting, plus a per-request timeline
//     reconstruction used to reconcile traces against ServingMetrics.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "serving/obs_registry.h"
#include "serving/request_gen.h"

namespace cimtpu::serving {

/// Tracing knobs, carried by ServingScenario.  Default-constructed =
/// everything off — the golden-pinned configuration.
struct TraceConfig {
  /// Record lifecycle/step events.  Off: the scheduler's sink pointer
  /// stays null and the run loop skips every trace branch.
  bool enabled = false;

  /// Simulated-time interval between TimeSamples; 0 disables sampling.
  /// Sampling works with `enabled` false (cheap gauges, no event buffer).
  Seconds sample_interval = 0;

  /// When `enabled` and non-empty, run_serving writes the trace here
  /// (created on demand): "<dir>/<label>.trace.json" (Perfetto) and,
  /// with `write_jsonl`, "<dir>/<label>.jsonl".  Empty: events stay
  /// in-memory only (tests, reconciliation).
  std::string dir;
  std::string label = "serving";
  bool write_perfetto = true;
  bool write_jsonl = false;

  void validate() const;
};

/// Typed lifecycle/step events.  kStep and kPrefillChunk are SPANS
/// (time .. end_time); everything else is an instant.
enum class TraceEventType {
  kArrive,        ///< request entered the waiting queue
  kAdmit,         ///< joined the running batch (tokens=prompt, prev=prefix hit)
  kPrefixHit,     ///< admission reused cached prefix KV (with kAdmit)
  kPrefillChunk,  ///< prompt tokens [prev, prev+tokens) pushed this step
  kFirstToken,    ///< first output token left the pipeline (TTFT point)
  kDecodeEnter,   ///< prompt complete; joined the decode batch
  kPreempt,       ///< evicted for recompute (KV dropped, re-queued)
  kSwapOut,       ///< KV pages moved to the host pool
  kSwapIn,        ///< KV pages restored from the host pool
  kFinish,        ///< last output token emitted (e2e point)
  kShed,          ///< never completes: dropped by admission control (EDF
                  ///< deadline shed, aux=0), cut by the simulated-time
                  ///< horizon while waiting/in flight (aux=1), or dropped
                  ///< by the fault subsystem (recovery off / retry budget
                  ///< exhausted, aux=2)
  kFault,         ///< injected fault event (serving/fault.h): aux=FaultType
  kRecover,       ///< fault recovery: backoff re-admission or host restore
  kDegrade,       ///< graceful-degradation mode change (aux: 1 enter, 0 exit)
  kRoute,         ///< cluster router assigned the request to a replica
                  ///< (aux=replica index; serving/cluster.h)
  kKvTransfer,    ///< disaggregated KV streaming: prefill replica's blocks
                  ///< shipped to the decode replica over the fabric
  kStep,          ///< one engine step (batch composition + cost + KV churn)
};

/// Stable lowercase name ("arrive", "prefill_chunk", ...), used by both
/// exporters and asserted on by trace-content tests.
const char* trace_event_type_name(TraceEventType type);

/// One recorded event.  Semi-generic payload fields; meaning by type:
///   kArrive        tokens=prompt_len  prev_tokens=output_len  aux=tenant_id
///   kAdmit         tokens=prompt_len  prev_tokens=prefix_hit_tokens
///                  aux=tenant_id
///   kPrefixHit     tokens=lookup_tokens  prev_tokens=hit_tokens
///                  blocks=shared_blocks  blocks2=cow_blocks
///   kPrefillChunk  prev_tokens=tokens already prefilled  tokens=chunk
///   kFirstToken    (time = emission time, TTFT reference)
///   kDecodeEnter   tokens=bucketed KV length at entry
///   kPreempt       —
///   kSwapOut/In    bytes=PCIe traffic
///   kFinish        tokens=generated output tokens
///   kShed          aux=cause (0 deadline shed, 1 horizon cut, 2 fault)
///   kFault         aux=FaultType (0 stall, 1 kv_loss, 2 device_failure)
///                  tokens=computed tokens lost  value=stall/restart seconds
///                  (request_id -1 for stall and device-failure events)
///   kRecover       aux=mechanism (0 backoff re-admission, 1 host restore)
///                  tokens=retry attempt  bytes=host-restore PCIe traffic
///   kDegrade       aux=1 entering degraded mode, 0 exiting
///   kRoute         aux=replica index  tokens=prompt_len
///                  prev_tokens=tenant_id  blocks=prefix_id (-1 none)
///   kKvTransfer    aux=destination replica  prev_tokens=source replica
///                  blocks=KV blocks streamed  bytes=payload
///                  value=transfer seconds (span time .. end_time)
///   kStep          batch  aux=kind (0 prefill, 1 decode)  value=latency s
///                  blocks=KV blocks allocated  blocks2=blocks reclaimed
///                  tokens=KV blocks referenced after the step
struct TraceEvent {
  TraceEventType type = TraceEventType::kArrive;
  std::int64_t step = -1;  ///< engine step index; -1 = outside any step
  Seconds time = 0;
  Seconds end_time = 0;  ///< spans only; == time for instants
  std::int64_t request_id = -1;  ///< -1 for kStep
  std::int64_t tokens = 0;
  std::int64_t prev_tokens = 0;
  std::int64_t blocks = 0;
  std::int64_t blocks2 = 0;
  std::int64_t batch = 0;
  std::int64_t aux = 0;
  Bytes bytes = 0;
  double value = 0;
};

/// What the scheduler can emit mid-step.  Split from ServingTrace so the
/// scheduler depends only on this narrow surface (and tests can stub it).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A waiting request joined the running batch.  Outcome fields are the
  /// KvCacheManager::AdmitOutcome of the admission (all 0 when the
  /// prefix cache is off).
  virtual void on_admit(const Request& request, std::int64_t lookup_tokens,
                        std::int64_t prefix_hit_tokens,
                        std::int64_t shared_blocks,
                        std::int64_t cow_blocks) = 0;
  /// A prefill participant pushed prompt tokens [prev, prev + chunk).
  virtual void on_prefill_chunk(std::int64_t request_id, std::int64_t prev,
                                std::int64_t chunk) = 0;
  /// A resident finished prefilling (or swapped back in mid-decode) and
  /// joined the decode batch at bucketed KV length `kv_bucket`.
  virtual void on_decode_enter(std::int64_t request_id,
                               std::int64_t kv_bucket) = 0;
  virtual void on_preempt(std::int64_t request_id) = 0;
  virtual void on_swap_out(std::int64_t request_id, Bytes bytes) = 0;
  virtual void on_swap_in(std::int64_t request_id, Bytes bytes) = 0;
  /// Admission control dropped a waiting request (EDF deadline shed): it
  /// will never be admitted.  Stamped with the current step's time.
  virtual void on_shed(std::int64_t request_id) = 0;
};

/// The standard sink + the driver-side hooks run_serving calls.  Events
/// emitted by the scheduler mid-step are stamped with the step's START
/// time (the simulated instant the scheduler planned them at); span end
/// times are patched when the driver closes the step, once its cost is
/// known.
class ServingTrace final : public TraceSink {
 public:
  ServingTrace() = default;
  explicit ServingTrace(TraceConfig config);

  const TraceConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  // --- Driver hooks (run_serving) ----------------------------------------
  void on_arrive(const Request& request);
  /// Opens step `step_index` at simulated time `start`; mid-step sink
  /// events are stamped with (step_index, start).
  void begin_step(std::int64_t step_index, Seconds start);
  /// Closes the open step: records the kStep span and patches the end
  /// time of this step's prefill-chunk spans.
  void end_step(bool prefill, std::int64_t batch, Seconds end,
                double latency_s, std::int64_t kv_referenced_blocks,
                std::int64_t blocks_allocated, std::int64_t blocks_reclaimed);
  void on_first_token(std::int64_t request_id, Seconds emit_time);
  void on_finish(std::int64_t request_id, Seconds completion,
                 std::int64_t generated_tokens);
  void on_shed(std::int64_t request_id, Seconds horizon);
  /// The fault subsystem dropped a waiting/in-flight request for good
  /// (recovery off or retry budget exhausted): kShed with cause "fault".
  void on_shed_fault(std::int64_t request_id, Seconds time);
  /// An injected fault event (aux codes per FaultType): `request_id` is
  /// the struck resident for kv-loss events, -1 for stalls and device
  /// failures; `lost_tokens` the computed work wiped; `duration` the
  /// stall window or restart epoch.
  void on_fault(std::int64_t request_id, std::int64_t fault_kind,
                Seconds time, std::int64_t lost_tokens, Seconds duration);
  /// A fault recovery: mechanism 0 = backoff re-admission (tokens =
  /// attempt number), 1 = in-place host restore (bytes = PCIe re-fetch).
  void on_recover(std::int64_t request_id, std::int64_t mechanism,
                  Seconds time, Bytes bytes, std::int64_t attempt);
  /// The sustained-failure detector flipped the degradation mode.
  void on_degrade(bool entering, Seconds time);
  /// Cluster driver hooks (serving/cluster.h) — the router assigned
  /// `request` to `replica`, and (disaggregated mode) a finished prompt's
  /// KV blocks streamed from `src_replica` to `dst_replica` over the
  /// fabric, taking `duration` seconds starting at `time`.
  void on_route(const Request& request, int replica, Seconds time);
  void on_kv_transfer(std::int64_t request_id, int src_replica,
                      int dst_replica, std::int64_t blocks, Bytes bytes,
                      Seconds time, Seconds duration);

  // --- TraceSink (scheduler) ---------------------------------------------
  void on_admit(const Request& request, std::int64_t lookup_tokens,
                std::int64_t prefix_hit_tokens, std::int64_t shared_blocks,
                std::int64_t cow_blocks) override;
  void on_prefill_chunk(std::int64_t request_id, std::int64_t prev,
                        std::int64_t chunk) override;
  void on_decode_enter(std::int64_t request_id,
                       std::int64_t kv_bucket) override;
  void on_preempt(std::int64_t request_id) override;
  void on_swap_out(std::int64_t request_id, Bytes bytes) override;
  void on_swap_in(std::int64_t request_id, Bytes bytes) override;
  void on_shed(std::int64_t request_id) override;

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Cumulative admitted prompt+output tokens per tenant — maintained
  /// even with event recording off, because the time-series sampler
  /// reads it (ascending tenant id by map order).
  const std::map<std::int64_t, std::int64_t>& tenant_admitted_tokens() const {
    return tenant_admitted_tokens_;
  }

 private:
  TraceEvent& push(TraceEventType type, std::int64_t request_id);

  TraceConfig config_;
  std::vector<TraceEvent> events_;
  std::map<std::int64_t, std::int64_t> tenant_admitted_tokens_;
  std::int64_t current_step_ = -1;
  Seconds current_time_ = 0;
  std::size_t step_first_event_ = 0;  ///< events_ index at begin_step
};

// --- Exporters ---------------------------------------------------------------

/// Chrome/Perfetto trace-event JSON: complete ("X") spans for queued
/// waits, prefill chunks, and decode phases on one track per request
/// (pid 1, tid = request id), instants for the lifecycle transitions,
/// kStep spans on the engine track (pid 2), and counter ("C") tracks
/// built from `samples` (pass {} for none).  Timestamps are simulated
/// microseconds.  Deterministic byte-for-byte for identical inputs.
std::string perfetto_trace_json(const std::vector<TraceEvent>& events,
                                const std::vector<TimeSample>& samples);

/// Flat JSONL: one {"type": ..., ...} object per line, in recording
/// order, only the fields meaningful for each type.
std::string trace_jsonl(const std::vector<TraceEvent>& events);

/// Per-request lifecycle rebuilt from a trace, for reconciling against
/// ServingMetrics: TTFT = first_token - arrival, e2e = completion -
/// arrival.  One entry per traced request, ascending by id.
struct RequestTimeline {
  std::int64_t request_id = -1;
  Seconds arrival = -1;
  Seconds first_admit = -1;
  Seconds first_token = -1;  ///< < 0: never emitted
  Seconds completion = -1;   ///< < 0: shed or still in flight
  std::int64_t generated_tokens = 0;
  std::int64_t prefill_chunks = 0;
  std::int64_t preemptions = 0;  ///< recompute + swap-out
  bool shed = false;
};

std::vector<RequestTimeline> trace_request_timelines(
    const std::vector<TraceEvent>& events);

/// Writes the configured trace artifacts for `trace` into
/// `trace.config().dir` (created on demand, permissions 0755): the
/// Perfetto JSON and/or JSONL per TraceConfig.  Returns the paths
/// written.  No-op (empty result) when the config has no dir or tracing
/// is disabled.
std::vector<std::string> write_trace_files(
    const ServingTrace& trace, const std::vector<TimeSample>& samples);

/// Collapses an arbitrary human-readable label (e.g. a sweep cell's
/// "rate=2 model=llama2-7b/int8 ...") into a filename-safe trace label:
/// [A-Za-z0-9._-] kept, every other run of characters becomes one '_'.
std::string sanitize_trace_label(const std::string& label);

}  // namespace cimtpu::serving
