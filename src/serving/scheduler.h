#pragma once
// Iteration-level (continuous-batching) scheduler, vLLM-style.
//
// The engine runs a sequence of steps.  Each step is either
//   * a PREFILL step: a group of newly admitted requests run their whole
//     prompt through all layers (and emit their first token), or
//   * a DECODE step: every running request advances by exactly one token.
// Requests join the running batch the moment capacity frees up (KV pages
// and batch slots), rather than waiting for the whole batch to drain —
// that is the continuous-batching property.
//
// Step costs come from the analytic simulator, memoized per
// (batch, bucketed-seqlen) shape so a million-request stream touches the
// cost model only a few thousand times (StepCostCache).

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/math_util.h"
#include "serving/kv_cache_manager.h"
#include "serving/request_gen.h"
#include "sim/workload_runner.h"

namespace cimtpu::serving {

/// Per-layer cost of one engine step shape.
struct StepCost {
  Seconds latency = 0;
  Seconds mxu_busy_time = 0;
  Joules mxu_energy = 0;
  Joules total_energy = 0;
};

/// Memoizes per-layer prefill/decode costs keyed on (batch, seqlen bucket).
/// Sequence lengths are rounded UP to `bucket` tokens — conservative, and
/// it bounds the number of distinct shapes the simulator ever costs.
class StepCostCache {
 public:
  StepCostCache(const sim::Simulator& simulator,
                const models::TransformerConfig& model,
                std::int64_t bucket = 128);

  /// One prefill layer over `batch` prompts of (bucketed) length `seq_len`.
  StepCost prefill_layer(std::int64_t batch, std::int64_t seq_len);

  /// One decode layer over `batch` sequences at (bucketed) KV length
  /// `kv_len`.
  StepCost decode_layer(std::int64_t batch, std::int64_t kv_len);

  std::int64_t bucket_up(std::int64_t len) const {
    return round_up(len, bucket_);
  }

  std::size_t size() const { return cache_.size(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

 private:
  StepCost lookup(bool prefill, std::int64_t batch, std::int64_t len);

  const sim::Simulator* simulator_;
  models::TransformerConfig model_;
  std::int64_t bucket_;
  std::unordered_map<std::uint64_t, StepCost> cache_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Scheduler knobs.
struct SchedulerConfig {
  int max_batch = 32;          ///< max concurrently running requests
  int max_prefill_batch = 8;   ///< max requests admitted into one prefill step
  std::int64_t seqlen_bucket = 128;  ///< cost-cache bucket granularity

  void validate() const;
};

/// What one engine step executed, as planned by the scheduler.
struct StepRecord {
  enum class Kind { kPrefill, kDecode };
  Kind kind = Kind::kDecode;
  std::int64_t batch = 0;    ///< participants in this step
  std::int64_t seq_len = 0;  ///< representative shape: mean prompt len
                             ///< (prefill) or mean KV len (decode) across
                             ///< participants, rounded up — total KV/
                             ///< activation traffic matches batch * mean
  std::vector<std::int64_t> first_token_ids;  ///< emitted their first token
  std::vector<std::int64_t> finished_ids;     ///< completed this step
  std::vector<std::int64_t> preempted_ids;    ///< evicted back to the queue
};

/// The continuous-batching state machine.  Time-free: the serving loop owns
/// the clock and costs each StepRecord via the StepCostCache.
class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(const SchedulerConfig& config,
                           KvCacheManager* kv_cache);

  /// Adds an arrived request to the waiting queue.
  void enqueue(const Request& request);

  /// True when nothing is waiting or running.
  bool idle() const { return waiting_.empty() && running_.empty(); }

  /// Plans and commits the next engine step.  Admission happens here:
  /// waiting requests are pulled into the batch while KV pages and batch
  /// slots allow (prefill-priority).  Returns nullopt when idle.
  std::optional<StepRecord> next_step();

  std::size_t waiting_count() const { return waiting_.size(); }
  std::size_t running_count() const { return running_.size(); }
  std::int64_t total_steps() const { return total_steps_; }
  std::int64_t preemptions() const { return preemptions_; }

 private:
  struct Running {
    Request request;
    std::int64_t generated = 0;  ///< tokens decoded so far (incl. first)
  };

  /// KV tokens reserved at admission: the whole sequence under kNone
  /// (growth can never fail), prompt + first token under preemption
  /// policies (grown per decode step).
  std::int64_t admission_reserve_tokens(const Request& request) const;

  SchedulerConfig config_;
  KvCacheManager* kv_cache_;
  std::deque<Request> waiting_;
  std::vector<Running> running_;  ///< admission order
  std::int64_t total_steps_ = 0;
  std::int64_t preemptions_ = 0;
};

}  // namespace cimtpu::serving
