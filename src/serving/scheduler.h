#pragma once
// Iteration-level (continuous-batching) scheduler, vLLM-style, with
// Sarathi-style chunked prefill and pluggable preemption.
//
// The engine runs a sequence of steps.  Each step is either
//   * a PREFILL step: prefilling sequences push prompt tokens through all
//     layers.  With chunking disabled a sequence prefills its whole prompt
//     in one step; with `prefill_chunk_tokens` set the step carries at most
//     that many prompt tokens in total, so long prompts stream through in
//     chunks interleaved with decode steps and TPOT stays bounded.  A
//     sequence whose prompt completes in a step emits its first token in
//     that step.  Or,
//   * a DECODE step: every fully-prefilled request advances by one token.
// Requests join the running batch the moment capacity frees up (KV pages
// and batch slots), rather than waiting for the whole batch to drain —
// that is the continuous-batching property.  WHICH waiting request joins
// next is delegated to a pluggable AdmissionPolicy
// (serving/admission_policy.h, selected by SchedulerConfig::admission):
// "fifo" by default — bit-identical to the pre-API scheduler — plus
// "priority" (aging, starvation-free) and "wfq" (per-tenant weighted fair
// queueing with optional token-rate caps).
//
// When decode-time KV growth outruns the device budget the scheduler
// preempts under the KvCacheManager's policy: recompute victims
// (kPreemptNewest, kPriorityVictim) drop their KV and re-queue from
// scratch; swap victims (kSwapToHost) move their pages to the host pool
// and resume decoding after re-admission without recomputing the prompt.
//
// KV is BLOCK-GRANULAR (kv_block_tokens-sized pages, kv_cache_manager.h):
// admission, growth, swap, and eviction all account in blocks, decode
// growth only allocates at block boundaries, and with
// `enable_prefix_cache` requests tagged with a shared prompt prefix map
// the cached prefix blocks by reference and START PREFILL MID-SEQUENCE —
// the first chunk's prev_len is the prefix-hit token count.
//
// Hot-path design: the scheduler maintains INCREMENTAL aggregates —
// resident decoder count, pending-growth BLOCK count, and a sorted
// bucketed-KV histogram over resident decoders — updated on every
// admit / prefill-completion / decode-advance / finish / preempt / swap
// transition, so planning a step never rescans all resident sequences.
// Step costs come from the analytic simulator, memoized per
// (batch, bucketed-seqlen) shape in a flat open-addressed table
// (StepCostCache, step_cost_cache.h).  `cost_step` sums PER-SEQUENCE
// attention costs over each participant's actual (bucketed) KV length —
// decode participants arrive pre-grouped by bucket via the histogram, so
// costing a step is allocation-free.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "serving/admission_policy.h"
#include "serving/kv_cache_manager.h"
#include "serving/metrics.h"
#include "serving/request_gen.h"
#include "serving/step_cost_cache.h"
#include "serving/trace.h"

namespace cimtpu::serving {

/// Scheduler knobs.
struct SchedulerConfig {
  int max_batch = 32;          ///< max concurrently resident requests
  int max_prefill_batch = 8;   ///< max prefill participants (and new
                               ///< admissions) per step
  std::int64_t seqlen_bucket = 128;  ///< cost-cache bucket granularity

  /// KV page size in tokens (KvCacheManager block granularity).  1 — the
  /// default — reproduces the historical contiguous per-token accounting
  /// bit for bit; larger blocks trade internal fragmentation for
  /// allocation granularity and enable meaningful prefix sharing.
  std::int64_t kv_block_tokens = 1;

  /// Ref-counted prefix caching over Request::prefix_id (see
  /// kv_cache_manager.h).  Off by default — the golden-pinned behaviour.
  bool enable_prefix_cache = false;

  /// 0 disables chunking (whole-prompt prefill steps).  Otherwise each
  /// prefill step carries at most this many prompt tokens in total and
  /// alternates with decode steps while both kinds of work exist.  Must be
  /// >= seqlen_bucket so every chunk advances its sequence's cost bucket.
  std::int64_t prefill_chunk_tokens = 0;

  /// Cost prefill steps at their ACTUAL batch: participants entering the
  /// step at the same prefilled offset with the same chunk length share
  /// one weight pass instead of each being charged a solo batch-1 pass.
  /// Off by default — the historical (pessimistic) costing the golden
  /// pins were recorded under.  See cost_step.
  bool batched_prefill_cost = false;

  /// Which waiting request joins the batch next: a registry-keyed
  /// AdmissionPolicy ("fifo" default — the pre-API behaviour — plus
  /// "priority" and "wfq"; see serving/admission_policy.h).
  AdmissionConfig admission;

  void validate() const;
};

/// What one engine step executed, as planned by the scheduler.  Shapes are
/// PER PARTICIPANT (parallel arrays in admission order) so the cost model
/// can charge each sequence's attention over its actual KV length rather
/// than a batch-mean representative.  Designed for reuse: the serving loop
/// keeps ONE record and the scheduler `clear()`s it each step, so the
/// vectors' capacity amortizes to zero allocations.
struct StepRecord {
  enum class Kind { kPrefill, kDecode };
  Kind kind = Kind::kDecode;
  std::int64_t batch = 0;  ///< participants in this step

  /// KV length each participant attends over this step: prompt tokens
  /// prefilled so far including this step's chunk (prefill), or prompt +
  /// generated tokens (decode).
  std::vector<std::int64_t> kv_lens;
  std::vector<std::int64_t> chunk_lens;  ///< prefill: new prompt tokens
  std::vector<std::int64_t> prev_lens;   ///< prefill: tokens already prefilled

  /// Decode only: participants grouped by bucketed KV length, ascending —
  /// a copy of the scheduler's incremental histogram, so cost_step never
  /// re-derives the grouping from kv_lens.  Empty for hand-built records
  /// (cost_step then groups from kv_lens itself).
  std::vector<std::pair<std::int64_t, std::int64_t>> decode_groups;

  std::vector<std::int64_t> first_token_ids;  ///< emitted their first token
  std::vector<std::int64_t> finished_ids;     ///< completed this step
  std::vector<std::int64_t> preempted_ids;    ///< evicted for recompute
  std::vector<std::int64_t> swapped_out_ids;  ///< KV moved to the host pool
  std::vector<std::int64_t> swapped_in_ids;   ///< KV restored from the host
  std::vector<std::int64_t> shed_ids;  ///< dropped by admission control
                                       ///< (EDF deadline shed): never
                                       ///< admitted, never complete
  Bytes swap_bytes = 0;  ///< PCIe traffic (out + in) charged to this step
  bool chunked = false;  ///< some participant's prompt was split
  bool batched_cost = false;  ///< prefill: cost shape-equal participants at
                              ///< their shared batch (see
                              ///< SchedulerConfig::batched_prefill_cost)

  /// Resets to an empty record, keeping vector capacity.
  void clear();
};

/// Per-sequence step cost: sums each participant's attention cost at its
/// own bucketed KV length.  Decode participants group by KV bucket (one
/// memoized decode_layer shape per group, accumulated in ascending bucket
/// order); prefill participants are costed as the telescoped difference
/// prefill(prev + chunk) - prefill(prev), so a chunked prompt's total
/// prefill cost is identical to the unchunked cost of the same prompt.
/// The same telescoping prices chunks that START mid-sequence: a
/// prefix-cache hit enters prefill with prev = hit tokens, so only the
/// uncached suffix is ever charged.
StepCost cost_step(StepCostCache& costs, const StepRecord& step);

/// The continuous-batching state machine.  Time-free: the serving loop owns
/// the clock and costs each StepRecord via `cost_step`.
class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(const SchedulerConfig& config,
                           KvCacheManager* kv_cache);

  /// Adds an arrived request to the waiting set (the admission policy
  /// owns its ordering).
  void enqueue(const Request& request);

  /// Adds a request whose PROMPT KV already exists on this replica — the
  /// disaggregated-serving decode side, where a dedicated prefill replica
  /// computed the prompt and streamed the KV blocks over (cluster.h).  The
  /// request waits in admission like any other, but on admission it maps
  /// its full prompt KV without prefilling (all prompt tokens accounted as
  /// prefix-skipped) and enters decode directly; its first LOCAL token is
  /// output token #2 (the prefill replica emitted #1).  Requires
  /// output_len >= 2.
  void enqueue_prefilled(const Request& request);

  /// Advances the policy-visible simulated clock (rate caps in
  /// WeightedFairAdmission).  The serving loop calls this before each
  /// next_step; direct drivers may never call it (the clock stays 0 and
  /// capped tenants live off their burst allowance).
  void set_time(Seconds now) { now_ = now; }

  /// True when nothing is waiting, resident, or swapped out.  The cheap
  /// vector checks run first: while anything is resident — the common case
  /// during serving — the virtual policy call is skipped entirely.
  bool idle() const {
    return resident_.empty() && swapped_.empty() && admission_->empty();
  }

  /// Plans and commits the next engine step into `record` (cleared first;
  /// pass the same record every step to reuse its vectors).  Admission
  /// happens here: swapped-out sequences are restored first (FIFO), then
  /// waiting requests are pulled into the batch while KV pages and batch
  /// slots allow.  Returns false when idle — including when admission
  /// control shed EVERY waiting request this call (a shedding policy can
  /// empty the engine; the sheds are reported in record->shed_ids, and no
  /// step ran).  For non-shedding policies a non-idle engine always steps.
  bool next_step(StepRecord* record);

  /// Convenience wrapper allocating a fresh record per step.
  std::optional<StepRecord> next_step();

  /// Test-only audit: recomputes the incremental decoder aggregates
  /// (resident/growing counts, bucketed-KV histogram) from a full scan of
  /// the resident sequences and compares them to the tracked values.
  /// O(n log n) — call from invariant tests after every step, never from
  /// the hot path.
  bool aggregates_consistent() const;

  /// Attaches an observability sink (serving/trace.h); nullptr detaches.
  /// The scheduler emits admit / prefill-chunk / decode-enter / preempt /
  /// swap transitions into it.  With no sink attached (the default) every
  /// emission site is a single null check — zero allocation, zero
  /// behavioural effect; the sink NEVER influences scheduling decisions.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  // --- Fault injection / recovery (serving/fault.h) -----------------------

  /// Progress snapshot of one resident sequence — what a fault wastes and
  /// what a host restore must re-fetch.
  struct ResidentInfo {
    std::int64_t request_id = -1;
    std::int64_t prefilled = 0;  ///< prompt tokens pushed (incl. prefix hits)
    std::int64_t prefix_skipped = 0;  ///< served from the prefix cache, never
                                      ///< actually computed by this sequence
    std::int64_t generated = 0;       ///< tokens decoded (>= 1 once the first
                                      ///< token was emitted)
  };

  /// The resident sequence at `index` (admission order, must be
  /// < running_count()) — the driver picks kv-loss victims by index so
  /// the choice is deterministic and platform-independent.
  ResidentInfo resident_info(std::size_t index) const;

  /// Fault: removes `request_id` from the engine — resident (device KV
  /// invalidated via KvCacheManager::invalidate_blocks) or swapped out
  /// (host-pool bytes released) — WITHOUT re-queueing it.  The caller
  /// owns what happens next: backoff re-admission (requeue_after_fault)
  /// or a fault shed.  `*out` receives the request, `*progress` (optional)
  /// the progress lost.  Returns false when the id is not in the engine.
  bool remove_for_fault(std::int64_t request_id, Request* out,
                        ResidentInfo* progress = nullptr);

  /// Fault recovery: re-enters a previously removed request through the
  /// admission policy once its backoff expired.  Requests that already
  /// streamed their first token re-queue with preempt seniority (FIFO
  /// front, EDF shed-exempt — their TTFT verdict is settled); the rest
  /// re-enter as fresh arrivals.
  void requeue_after_fault(const Request& request, bool emitted_first_token);

  /// Fault recovery (host shadow): re-materializes a RESIDENT sequence's
  /// device KV in place after a kv-loss event, when the host pool could
  /// hold the shadow (KvCacheManager::restore_from_host).  On success the
  /// sequence keeps all progress and `*bytes` is the PCIe re-fetch the
  /// driver charges to the clock; on failure the caller falls back to
  /// remove_for_fault + recompute.
  bool restore_resident_from_host(std::int64_t request_id, Bytes* bytes);

  /// Graceful degradation (serving/fault.h): caps the resident batch at
  /// `degraded_max_batch` while `degraded` (0 = keep the configured
  /// max_batch) and forwards the mode to the admission policy (EDF
  /// tightens shedding).  Residents over the cap are not evicted; the cap
  /// only throttles new admissions.
  void set_degraded(bool degraded, int degraded_max_batch);
  bool degraded() const { return degraded_; }

  std::size_t waiting_count() const { return admission_->size(); }
  std::size_t running_count() const { return resident_.size(); }
  std::size_t swapped_count() const { return swapped_.size(); }
  /// Residents past prefill (the decode batch size), tracked
  /// incrementally — the time-series sampler reads this per sample.
  std::int64_t resident_decoder_count() const { return resident_decoders_; }
  std::int64_t total_steps() const { return total_steps_; }
  std::int64_t preemptions() const { return counters_.total_preemptions(); }
  const ServingCounters& counters() const { return counters_; }
  const AdmissionPolicy& admission_policy() const { return *admission_; }

 private:
  /// Cold snapshot of one sequence — the representation swapped-out
  /// sequences keep while they live off the device.  Swap transitions are
  /// rare; nothing per-step ever walks these.
  struct Sequence {
    Request request;
    std::int64_t prefilled = 0;  ///< prompt tokens pushed through the model
    std::int64_t generated = 0;  ///< tokens decoded so far (incl. first)
    std::int64_t prefix_skipped = 0;  ///< leading tokens served from the
                                      ///< prefix cache (prefill starts here)
    std::int64_t swapped_tokens = 0;  ///< host-pool KV tokens, snapshotted at
                                      ///< swap-out (constant while on host) —
                                      ///< saves a per-step manager lookup in
                                      ///< the swap-in watermark
    bool prefilling() const { return prefilled < request.prompt_len; }
  };

  /// Struct-of-arrays pool for RESIDENT sequences: the per-sequence fields
  /// the step builders read every iteration live in parallel arrays indexed
  /// by a dense, free-listed slot, so the decode hot loop streams
  /// contiguous integers instead of chasing per-request heap nodes.
  /// `resident_` holds the live slots in admission order — compaction,
  /// eviction, and finish move 4-byte slot ids, never whole sequences.  The
  /// full Request stays in a parallel COLD array the hot loop touches only
  /// on rare transitions (finish / preempt / fault / trace emission).
  struct SequencePool {
    std::vector<std::int64_t> prompt_len;
    std::vector<std::int64_t> output_len;
    std::vector<std::int64_t> prefilled;
    std::vector<std::int64_t> generated;
    std::vector<std::int64_t> prefix_skipped;
    std::vector<std::int64_t> bucket;   ///< cached decode cost bucket —
                                        ///< valid iff the slot is a decoder
    std::vector<std::int32_t> kv_slot;  ///< KvCacheManager dense handle:
                                        ///< growth checks index an array
                                        ///< instead of hashing request ids
    std::vector<Request> request;       ///< cold: events / requeue / audits
    std::vector<std::int32_t> free_list;

    /// Returns a free slot, extending every array in lockstep on demand.
    std::int32_t acquire();
    void release(std::int32_t slot) { free_list.push_back(slot); }
  };

  /// KV tokens reserved at admission: the whole sequence under kNone
  /// (growth can never fail), prompt + first token under preemption
  /// policies (grown per decode step).
  std::int64_t admission_reserve_tokens(const Request& request) const;

  // --- Incremental decoder aggregates ------------------------------------
  // Invariants over `resident_` slots with !slot_prefilling():
  //   resident_decoders_ = their count,
  //   pending_growth_blocks_ = KV BLOCKS the next decode step must be able
  //                            to allocate: decoders that still grow
  //                            (generated + 1 < output_len) AND whose next
  //                            token crosses a block boundary
  //                            (KvCacheManager::grow_needs_block_slot).  At
  //                            block size 1 every growing decoder crosses,
  //                            so this equals the pre-paging growing count.
  //   decode_kv_histogram_ = sorted (bucket_up(prompt + generated), count)
  //                          pairs, counts > 0.  Kept in cost-bucket TOKEN
  //                          units: it feeds the step-cost cache, whose
  //                          shapes are token-bucketed, not block-sized.
  //   pool_.bucket[slot] caches bucket_up(prompt + generated) per decoder,
  //   so the advance loop detects bucket crossings with one compare
  //   (kv_len == bucket ⇒ the next token crosses) instead of re-rounding.
  bool slot_prefilling(std::int32_t slot) const {
    return pool_.prefilled[slot] < pool_.prompt_len[slot];
  }
  bool sequence_grows(std::int32_t slot) const {
    return pool_.generated[slot] + 1 < pool_.output_len[slot];
  }
  /// Blocks the next decode step must allocate for `slot` (0 or 1).  At
  /// block size 1 — the golden-pinned default — EVERY grow crosses a block
  /// boundary (tokens % 1 == 0 always), so the KV-manager probe is skipped
  /// entirely on that path.
  std::int64_t growth_blocks(std::int32_t slot) const {
    return sequence_grows(slot) &&
                   (config_.kv_block_tokens == 1 ||
                    kv_cache_->grow_needs_block_slot(pool_.kv_slot[slot]))
               ? 1
               : 0;
  }
  std::int64_t decode_bucket(std::int32_t slot) const {
    return round_up(pool_.prompt_len[slot] + pool_.generated[slot],
                    config_.seqlen_bucket);
  }
  void histogram_add(std::int64_t bucket);
  void histogram_remove(std::int64_t bucket);
  void decoder_enter(std::int32_t slot);
  void decoder_leave(std::int32_t slot);
  /// Fills a freshly acquired pool slot from a request plus progress state
  /// and appends it to `resident_`.  The KV entry must already be resident
  /// (kv_slot is resolved here, once per admission).
  std::int32_t resident_append(const Request& request, std::int64_t prefilled,
                               std::int64_t generated,
                               std::int64_t prefix_skipped);

  /// Capacity snapshot handed to AdmissionPolicy::select.
  AdmissionContext admission_context() const;

  /// The batch cap admissions honour right now: the configured max_batch,
  /// tightened to degraded_max_batch_ while degradation is active.  Never
  /// below 1 (a degraded engine still serves).
  int effective_max_batch() const {
    return degraded_ && degraded_max_batch_ > 0 &&
                   degraded_max_batch_ < config_.max_batch
               ? degraded_max_batch_
               : config_.max_batch;
  }

  void swap_in_and_admit(StepRecord* record);
  /// Drains the admission policy's deadline sheds into `record->shed_ids`,
  /// counting them and emitting trace events.
  void drain_shed(StepRecord* record);
  void build_prefill_step(StepRecord* record);
  /// Returns false when KV pressure evicted every decode participant (the
  /// caller falls back to a prefill step).
  bool build_decode_step(StepRecord* record);

  SchedulerConfig config_;
  KvCacheManager* kv_cache_;
  std::unique_ptr<AdmissionPolicy> admission_;  ///< owns the waiting set
  TraceSink* trace_ = nullptr;      ///< optional observer (never scheduling)
  Seconds now_ = 0;                 ///< simulated clock (see set_time)
  std::deque<Sequence> swapped_;    ///< swap-out order (FIFO re-admission)
  SequencePool pool_;               ///< SoA storage for resident sequences
  std::vector<std::int32_t> resident_;  ///< live pool slots, admission order
  std::int64_t resident_decoders_ = 0;
  std::int64_t pending_growth_blocks_ = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> decode_kv_histogram_;
  bool last_step_prefill_ = false;  ///< interleave state under chunking
  bool may_shed_ = false;           ///< cached AdmissionPolicy::may_shed()
  bool admit_memo_ok_ = false;  ///< cached AdmissionPolicy::select_is_pure()
  /// Head-of-line admission probe memo (pure-select policies only): set
  /// when try_admit rejected the policy's head, cleared by ANY structural
  /// change that could alter the probe's outcome — enqueue/requeue, a
  /// release or eviction freeing blocks, swap traffic, prefill progress
  /// (prefix-cache state), fault surgery, or a degradation toggle.  Pure
  /// decode growth only consumes capacity, so while the flag holds the
  /// probe would fail identically and is skipped.
  bool admit_blocked_ = false;
  bool degraded_ = false;           ///< graceful-degradation mode
  int degraded_max_batch_ = 0;      ///< batch cap while degraded (0 = none)
  std::int64_t total_steps_ = 0;
  ServingCounters counters_;
  std::vector<Request> shed_scratch_;  ///< drain_shed buffer (reused)
  /// Requests enqueued via enqueue_prefilled, pending admission.  Empty on
  /// every non-disaggregated run: the admission hot path short-circuits on
  /// empty() before any hashing.
  std::unordered_set<std::int64_t> prefilled_pending_;
};

}  // namespace cimtpu::serving
