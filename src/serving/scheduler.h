#pragma once
// Iteration-level (continuous-batching) scheduler, vLLM-style, with
// Sarathi-style chunked prefill and pluggable preemption.
//
// The engine runs a sequence of steps.  Each step is either
//   * a PREFILL step: prefilling sequences push prompt tokens through all
//     layers.  With chunking disabled a sequence prefills its whole prompt
//     in one step; with `prefill_chunk_tokens` set the step carries at most
//     that many prompt tokens in total, so long prompts stream through in
//     chunks interleaved with decode steps and TPOT stays bounded.  A
//     sequence whose prompt completes in a step emits its first token in
//     that step.  Or,
//   * a DECODE step: every fully-prefilled request advances by one token.
// Requests join the running batch the moment capacity frees up (KV pages
// and batch slots), rather than waiting for the whole batch to drain —
// that is the continuous-batching property.
//
// When decode-time KV growth outruns the device budget the scheduler
// preempts under the KvCacheManager's policy: recompute victims
// (kPreemptNewest, kPriorityVictim) drop their KV and re-queue from
// scratch; swap victims (kSwapToHost) move their pages to the host pool
// and resume decoding after re-admission without recomputing the prompt.
//
// Step costs come from the analytic simulator, memoized per
// (batch, bucketed-seqlen) shape so a million-request stream touches the
// cost model only a few thousand times (StepCostCache).  `cost_step` sums
// PER-SEQUENCE attention costs over each participant's actual (bucketed)
// KV length — not the batch mean — with prefill-chunk and decode tokens
// costed separately.

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/math_util.h"
#include "serving/kv_cache_manager.h"
#include "serving/metrics.h"
#include "serving/request_gen.h"
#include "sim/workload_runner.h"

namespace cimtpu::serving {

/// Per-layer cost of one engine step shape.
struct StepCost {
  Seconds latency = 0;
  Seconds mxu_busy_time = 0;
  Joules mxu_energy = 0;
  Joules total_energy = 0;
};

/// Memoizes per-layer prefill/decode costs keyed on (batch, seqlen bucket).
/// Sequence lengths are rounded UP to `bucket` tokens — conservative, and
/// it bounds the number of distinct shapes the simulator ever costs.
class StepCostCache {
 public:
  StepCostCache(const sim::Simulator& simulator,
                const models::TransformerConfig& model,
                std::int64_t bucket = 128);

  /// One prefill layer over `batch` prompts of (bucketed) length `seq_len`.
  StepCost prefill_layer(std::int64_t batch, std::int64_t seq_len);

  /// One decode layer over `batch` sequences at (bucketed) KV length
  /// `kv_len`.
  StepCost decode_layer(std::int64_t batch, std::int64_t kv_len);

  std::int64_t bucket_up(std::int64_t len) const {
    return round_up(len, bucket_);
  }

  std::size_t size() const { return cache_.size(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

 private:
  StepCost lookup(bool prefill, std::int64_t batch, std::int64_t len);

  const sim::Simulator* simulator_;
  models::TransformerConfig model_;
  std::int64_t bucket_;
  std::unordered_map<std::uint64_t, StepCost> cache_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Scheduler knobs.
struct SchedulerConfig {
  int max_batch = 32;          ///< max concurrently resident requests
  int max_prefill_batch = 8;   ///< max prefill participants (and new
                               ///< admissions) per step
  std::int64_t seqlen_bucket = 128;  ///< cost-cache bucket granularity

  /// 0 disables chunking (whole-prompt prefill steps).  Otherwise each
  /// prefill step carries at most this many prompt tokens in total and
  /// alternates with decode steps while both kinds of work exist.  Must be
  /// >= seqlen_bucket so every chunk advances its sequence's cost bucket.
  std::int64_t prefill_chunk_tokens = 0;

  void validate() const;
};

/// What one engine step executed, as planned by the scheduler.  Shapes are
/// PER PARTICIPANT (parallel arrays in admission order) so the cost model
/// can charge each sequence's attention over its actual KV length rather
/// than a batch-mean representative.
struct StepRecord {
  enum class Kind { kPrefill, kDecode };
  Kind kind = Kind::kDecode;
  std::int64_t batch = 0;  ///< participants in this step

  /// KV length each participant attends over this step: prompt tokens
  /// prefilled so far including this step's chunk (prefill), or prompt +
  /// generated tokens (decode).
  std::vector<std::int64_t> kv_lens;
  std::vector<std::int64_t> chunk_lens;  ///< prefill: new prompt tokens
  std::vector<std::int64_t> prev_lens;   ///< prefill: tokens already prefilled

  std::vector<std::int64_t> first_token_ids;  ///< emitted their first token
  std::vector<std::int64_t> finished_ids;     ///< completed this step
  std::vector<std::int64_t> preempted_ids;    ///< evicted for recompute
  std::vector<std::int64_t> swapped_out_ids;  ///< KV moved to the host pool
  std::vector<std::int64_t> swapped_in_ids;   ///< KV restored from the host
  Bytes swap_bytes = 0;  ///< PCIe traffic (out + in) charged to this step
  bool chunked = false;  ///< some participant's prompt was split
};

/// Per-sequence step cost: sums each participant's attention cost at its
/// own bucketed KV length.  Decode participants group by KV bucket (one
/// memoized decode_layer shape per group); prefill participants are costed
/// as the telescoped difference prefill(prev + chunk) - prefill(prev), so
/// a chunked prompt's total prefill cost is identical to the unchunked
/// cost of the same prompt.
StepCost cost_step(StepCostCache& costs, const StepRecord& step);

/// The continuous-batching state machine.  Time-free: the serving loop owns
/// the clock and costs each StepRecord via `cost_step`.
class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(const SchedulerConfig& config,
                           KvCacheManager* kv_cache);

  /// Adds an arrived request to the waiting queue.
  void enqueue(const Request& request);

  /// True when nothing is waiting, resident, or swapped out.
  bool idle() const {
    return waiting_.empty() && sequences_.empty() && swapped_.empty();
  }

  /// Plans and commits the next engine step.  Admission happens here:
  /// swapped-out sequences are restored first (FIFO), then waiting
  /// requests are pulled into the batch while KV pages and batch slots
  /// allow.  Returns nullopt when idle.
  std::optional<StepRecord> next_step();

  std::size_t waiting_count() const { return waiting_.size(); }
  std::size_t running_count() const { return sequences_.size(); }
  std::size_t swapped_count() const { return swapped_.size(); }
  std::int64_t total_steps() const { return total_steps_; }
  std::int64_t preemptions() const { return counters_.total_preemptions(); }
  const ServingCounters& counters() const { return counters_; }

 private:
  struct Sequence {
    Request request;
    std::int64_t prefilled = 0;  ///< prompt tokens pushed through the model
    std::int64_t generated = 0;  ///< tokens decoded so far (incl. first)
    bool prefilling() const { return prefilled < request.prompt_len; }
  };

  /// KV tokens reserved at admission: the whole sequence under kNone
  /// (growth can never fail), prompt + first token under preemption
  /// policies (grown per decode step).
  std::int64_t admission_reserve_tokens(const Request& request) const;

  void swap_in_and_admit(StepRecord* record);
  void build_prefill_step(StepRecord* record);
  /// Returns false when KV pressure evicted every decode participant (the
  /// caller falls back to a prefill step).
  bool build_decode_step(StepRecord* record);

  SchedulerConfig config_;
  KvCacheManager* kv_cache_;
  std::deque<Request> waiting_;
  std::deque<Sequence> swapped_;    ///< swap-out order (FIFO re-admission)
  std::vector<Sequence> sequences_; ///< resident, admission order
  bool last_step_prefill_ = false;  ///< interleave state under chunking
  std::int64_t total_steps_ = 0;
  ServingCounters counters_;
};

}  // namespace cimtpu::serving
