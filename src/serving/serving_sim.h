#pragma once
// Request-level serving simulation: replays a stochastic arrival trace
// through the continuous-batching scheduler, costing every engine step
// with the analytic simulator, and reports the distributional metrics a
// serving deployment is judged by — TTFT, TPOT, end-to-end latency
// percentiles, goodput, energy per token, and MXU utilization.
//
// Step costs are PER SEQUENCE: each participant's attention is charged at
// its own (bucketed) KV length via `cost_step`, with prefill-chunk and
// decode tokens costed separately.  Swap-to-host preemptions additionally
// charge the PCIe transfer of the victim's KV pages to the step that
// moved them.
//
// Deployments are a single chip or a `chips`-way pipeline over the ICI
// ring (parallel/multi_chip.h semantics): layers split evenly, the
// bottleneck stage sets the steady-state step interval, and tokens pay the
// pipeline traversal latency (stage count x stage time) on top of the
// step that emitted them.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "arch/tpu_config.h"
#include "serving/fault.h"
#include "serving/metrics.h"
#include "serving/obs_registry.h"
#include "serving/request_gen.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

namespace cimtpu::serving {

/// A serving deployment under test.
struct ServingScenario {
  arch::TpuChipConfig chip_config;
  models::TransformerConfig model;
  int chips = 1;  ///< pipeline-parallel stages over the ICI ring
  SchedulerConfig scheduler;  ///< incl. chunked-prefill token budget

  /// Megatron-style tensor parallelism (parallel/multi_chip.h): the model
  /// is sharded `ways` across chips (heads and d_ff split), every layer
  /// pays two ring all-reduces of the step's activation rows, and the KV
  /// budget spans all shards' HBM headroom — the unlock for models larger
  /// than one chip's HBM.  1 (the default) is the single-chip /
  /// pipeline-parallel path, bit-identical to pre-TP builds.  Combining
  /// with pipeline stages (`chips` > 1) is not modeled.
  int tensor_parallel_ways = 1;

  EvictionPolicy eviction = EvictionPolicy::kPreemptNewest;
  Bytes kv_budget_override = 0;  ///< 0 -> KvCacheManager::hbm_kv_budget
                                 ///< (bottleneck-stage HBM headroom)

  /// kSwapToHost knobs: host pool size and the PCIe-class link KV pages
  /// cross in each direction (transfer time is charged to the step).
  Bytes host_pool_capacity = 1024 * GiB;
  BytesPerSecond host_link_bandwidth = 64 * GBps;

  /// Simulated-time horizon: 0 runs until every request drains (the
  /// default, unchanged behaviour); > 0 stops the engine at this simulated
  /// second and requests still in flight simply never complete.  Fairness
  /// studies need this — over a full drain every tenant finishes all of
  /// its work, so only a fixed OVERLOADED window makes an admission
  /// policy's share enforcement visible in per-tenant goodput.
  Seconds max_sim_seconds = 0;

  /// Observability (serving/trace.h): event tracing, trace-file output,
  /// and time-series sampling.  Default-off — zero hot-path allocation
  /// and bit-identical metrics either way.
  TraceConfig trace;

  /// Fault injection + recovery (serving/fault.h).  Default-off — the
  /// fault rng is never consulted and the run is bit-identical to a
  /// build without the subsystem.
  FaultConfig fault;

  void validate() const;
};

/// Aggregate result of one serving run.
struct ServingMetrics {
  int chips = 1;
  std::int64_t num_requests = 0;
  std::int64_t completed = 0;
  std::int64_t generated_tokens = 0;  ///< across completed requests

  std::int64_t total_steps = 0;
  std::int64_t prefill_steps = 0;
  std::int64_t decode_steps = 0;
  std::int64_t preemptions = 0;  ///< recompute + swap (see counters)
  ServingCounters counters;      ///< per-policy preemptions, swap bytes,
                                 ///< chunked-prefill steps, prefix-cache
                                 ///< hits/shared blocks/CoW copies

  /// Paged-KV gauges (schema-v5 "prefix_cache" block): the fraction of
  /// eligible prefix tokens served from cached blocks, and the mean
  /// per-step last-block waste of the block allocator (0 at block size 1).
  double prefix_hit_rate = 0;
  double kv_internal_fragmentation = 0;

  Seconds makespan = 0;        ///< last token emission time
  Seconds sim_end_seconds = 0; ///< simulated clock when the engine stopped:
                               ///< never past max_sim_seconds when a horizon
                               ///< is set (>= makespan either way)
  LatencySummary ttft;         ///< time to first token
  LatencySummary tpot;         ///< time per output token (steady decode)
  LatencySummary e2e;          ///< request completion latency

  double goodput_tokens_per_second = 0;

  /// SLO attainment (schema-v7 "slo_frontier" block): a request MEETS its
  /// SLO when it completed inside the window and every deadline it
  /// carries holds — TTFT (first token within Request::ttft_deadline of
  /// arrival) and TPOT (steady decode within Request::tpot_deadline per
  /// token).  Deadline-free completed requests count as meeting; shed or
  /// never-completed requests count as missing.  `slo_attainment` is
  /// met / arrived (1.0 when nothing arrived);
  /// `slo_goodput_tokens_per_second` counts ONLY deadline-meeting
  /// requests' tokens over the makespan — the DistServe-style goodput
  /// that a shedding policy trades raw throughput for.
  std::int64_t slo_met = 0;
  double slo_attainment = 1.0;
  double slo_goodput_tokens_per_second = 0;

  /// Resilience metrics (schema-v8 "resilience" block).  `availability`
  /// is completed / arrived — the fraction of requests that arrived
  /// inside the simulated window and actually finished (faults, sheds,
  /// and horizon cuts all lower it; 1.0 when nothing arrived).
  /// `mttr_seconds` is the mean repair interval over repaired faults:
  /// host restores repair in the PCIe re-fetch time, recompute victims
  /// when the re-admitted request finally completes (0 with no repairs).
  /// `wasted_recompute_tokens` counts computed tokens (prefill beyond
  /// prefix hits + decode) thrown away by fault evictions;
  /// `retries_total` counts backoff re-admissions.  All four are 0 /
  /// 1.0-defaulted and `fault` all-zero when the subsystem is off.
  double availability = 1.0;
  Seconds mttr_seconds = 0;
  std::int64_t wasted_recompute_tokens = 0;
  std::int64_t retries_total = 0;
  FaultStats fault;  ///< per-type event + recovery counts ("fault.*")

  /// Per-tenant QoS breakdown (schema-v4): one row per tenant id with at
  /// least one request arriving inside the simulated window, ascending,
  /// plus Jain's fairness index over the tenants' weight-normalized
  /// goodput (1.0 when fewer than two such tenants).
  std::vector<TenantMetrics> tenants;
  double jain_fairness = 1.0;

  Joules mxu_energy = 0;
  Joules total_energy = 0;
  Joules energy_per_token = 0;
  double mxu_utilization = 0;  ///< busy time / (makespan * chips)

  std::size_t cost_cache_entries = 0;
  std::int64_t cost_cache_hits = 0;
  std::int64_t cost_cache_misses = 0;
  double cost_cache_occupancy = 0;  ///< flat-table load factor at run end

  /// End-of-run observability registry (schema-v6 "registry" block):
  /// every subsystem's published counters/gauges/histograms — scheduler
  /// counters, cost cache, KV manager, admission policy, step-latency and
  /// batch-size histograms.  Deterministic (fed only by simulated state).
  MetricsRegistry registry;

  /// Time-series samples (empty unless ServingScenario::trace
  /// .sample_interval > 0).  Deterministic.
  std::vector<TimeSample> timeseries;

  /// Simulator performance (schema-v3 perf trajectory): wall-clock seconds
  /// this run_serving call spent and engine steps simulated per wall
  /// second.  These are the ONLY non-deterministic fields — equivalence
  /// checks (golden pins, parallel-vs-serial sweeps) must ignore them.
  Seconds sim_wall_seconds = 0;
  double steps_per_second = 0;
};

/// Incremental single-replica serving engine: the exact run_serving state
/// machine, re-cut so a cluster driver (serving/cluster.h) can co-simulate
/// several replicas on one discrete-event clock.  Lifecycle:
///
///   ServingEngine engine(scenario);
///   engine.inject(request);   // any time, nondecreasing arrival order
///   engine.pump(until);       // simulate up to `until` simulated seconds
///   engine.drain();           // run until all injected work completes
///   ServingMetrics m = engine.finish();  // end-of-run rollups (once)
///
/// inject -> drain -> finish over a whole trace is bit-identical to
/// run_serving on that trace: pump's stop point only truncates the loop
/// BETWEEN iterations, never inside one, and an idle engine advances its
/// clock exactly to the next arrival / retry / horizon event as before.
class ServingEngine {
 public:
  explicit ServingEngine(const ServingScenario& scenario,
                         SharedStepCostCache* shared_costs = nullptr,
                         ServingTrace* trace_out = nullptr);
  ~ServingEngine();
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Final per-request outcome, in injection order — what a cluster rollup
  /// stitches cross-replica request timelines from.
  struct RequestOutcome {
    std::int64_t id = 0;
    Seconds arrival = 0;
    std::int64_t output_len = 0;
    std::int64_t tenant_id = 0;
    bool arrived = false;      ///< fed to the scheduler inside the window
    Seconds first_token = -1;  ///< < 0: never emitted
    Seconds completion = -1;   ///< < 0: shed or cut by the horizon
    bool shed = false;
  };

  /// Adds a request to the engine's trace.  Requests must be injected in
  /// nondecreasing arrival-time order (checked when fed); the engine pulls
  /// them in as its clock reaches their arrival times.
  void inject(const Request& request);

  /// Disaggregated serving: injects a request whose PREFILL already ran on
  /// another replica — its KV blocks arrive pre-computed (the cluster
  /// driver costs the transfer), so the scheduler admits it straight into
  /// decode with one token already emitted elsewhere.  Requires
  /// output_len >= 2 (an output_len == 1 request has no decode work).
  void inject_prefilled(const Request& request);

  /// Runs engine iterations until the simulated clock reaches `until`, all
  /// injected work drains, or the horizon cuts the run.  Returns true when
  /// work remains (stopped at `until`), false when the engine has nothing
  /// left to do (more injections may revive it).
  bool pump(Seconds until);

  /// Runs until every injected request completes (or the horizon cuts).
  void drain();

  /// End-of-run rollups: distributional metrics, registry publishing,
  /// trace-file output.  Call exactly once, after the last pump/drain; the
  /// engine is unusable afterwards.
  ServingMetrics finish();

  /// Current simulated time.
  Seconds now() const;

  /// True while injected arrivals, resident work, or fault retries remain.
  bool work_pending() const;

  /// Load gauge for routing: prompt + output tokens of every injected
  /// request not yet completed or shed (queued + resident work).
  std::int64_t outstanding_tokens() const;

  /// Completion log for disaggregated prefill replicas: when enabled,
  /// every completion is appended as (request id, completion time).
  /// take_completions() drains the log in completion order.
  void set_completion_log(bool enabled);
  std::vector<std::pair<std::int64_t, Seconds>> take_completions();

  /// Per-request outcomes in injection order (see RequestOutcome).
  std::vector<RequestOutcome> outcomes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Replays `requests` (must be sorted by arrival time) through the
/// deployment.  `shared_costs` (optional) lets sweeps share computed step
/// costs across runs with the same (chip, model, bucket) signature; it
/// never changes the simulated metrics, only wall-clock.  `trace_out`
/// (optional) receives the run's event trace when
/// `scenario.trace.enabled` — pass one to inspect events in memory;
/// without it the trace lives (and, with a configured dir, is written)
/// internally.
ServingMetrics run_serving(const ServingScenario& scenario,
                           const std::vector<Request>& requests,
                           SharedStepCostCache* shared_costs = nullptr,
                           ServingTrace* trace_out = nullptr);

/// Generates the trace from `stream` and replays it.
ServingMetrics run_serving(const ServingScenario& scenario,
                           const RequestStreamConfig& stream,
                           SharedStepCostCache* shared_costs = nullptr,
                           ServingTrace* trace_out = nullptr);

}  // namespace cimtpu::serving
