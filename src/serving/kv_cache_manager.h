#pragma once
// Block-granular (paged) KV-cache allocator with ref-counted prefix
// sharing, against a chip's memory capacity.
//
// Under continuous batching the KV cache — not compute — usually caps how
// many requests can decode concurrently: each resident sequence pins
// 2 * kv_len * d_model * dtype_bytes per layer (models::kv_cache_bytes_
// per_layer).  Real engines do not reserve that footprint contiguously:
// vLLM's PagedAttention (Kwon et al., SOSP'23) carves the budget into
// fixed-size token BLOCKS so sequences grow a block at a time with no
// external fragmentation, and SGLang's RadixAttention shares the blocks
// of a common prompt prefix across requests.  This manager models both:
//
//   * PAGING — every mapping is ceil(tokens / block_tokens) blocks; the
//     capacity is an integer number of blocks; growth allocates a new
//     block only when a sequence crosses a block boundary.  With
//     block_tokens = 1 the accounting reduces exactly to the historical
//     contiguous per-token model (the compatibility contract the golden
//     pins run under).
//   * REF-COUNTED PREFIX CACHING (opt-in) — a prefix index keyed on
//     (prefix id, block index) maps the FULL blocks of a shared prompt
//     prefix to one physical block; requests with the same prefix map the
//     same blocks (refcount++) and skip prefilling the covered tokens.
//     Released prefix blocks stay CACHED (refcount 0, still occupying
//     capacity, still hittable) until allocation pressure reclaims them
//     in LRU order.  A shared partial TAIL block (prefix_len not a block
//     multiple) is served copy-on-write: the prefix tokens are reused but
//     the divergence point is inside the block, so the sharer gets a
//     private copy.  The copy is made at admission — divergence is
//     certain (every request appends at least one token past the prefix)
//     — which is observationally identical to copying lazily at the first
//     divergent write.
//
// The manager gates admission, implements the eviction side of every
// preemption policy (recompute victims drop their blocks outright, swap
// victims move them to a modeled host pool and restore them later over
// PCIe), and keeps incremental victim-order indices so
// `pick_eviction_victim` never rescans the resident set.  It is pure
// bookkeeping — deterministic and allocation-cheap — so million-request
// streams stay fast.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/math_util.h"
#include "common/units.h"
#include "models/transformer.h"

namespace cimtpu::serving {

class MetricsRegistry;

/// What to do when a resident request cannot grow its KV cache.
enum class EvictionPolicy {
  kNone,            ///< never evict; admission simply blocks until releases
  kPreemptNewest,   ///< preempt the most recently admitted request
                    ///< (vLLM's recompute policy: its KV is dropped and the
                    ///< request re-queues from scratch)
  kSwapToHost,      ///< newest victim, but its KV blocks cross PCIe into a
                    ///< modeled host pool and are restored on re-admission —
                    ///< prompt tokens are never recomputed
  kPriorityVictim,  ///< evict the lowest-priority resident request,
                    ///< breaking ties by largest KV footprint (recompute).
                    ///< The oldest resident is exempt — a forward-progress
                    ///< guarantee, else the most-progressed low-priority
                    ///< sequence is reset every pressure cycle and starves
};

std::string eviction_policy_name(EvictionPolicy policy);

class KvCacheManager {
 public:
  /// `capacity` is the device byte budget available for KV blocks; it is
  /// floored to whole blocks of `block_tokens * bytes_per_token` bytes.
  /// `bytes_per_token` is the whole-model footprint of one cached token.
  /// `host_capacity` bounds the kSwapToHost pool; swap-outs that would
  /// overflow it fail and the caller falls back to recompute.
  /// `enable_prefix_cache` turns on the prefix index (off by default: the
  /// historical behaviour, and the mode the golden pins freeze).
  KvCacheManager(Bytes capacity, Bytes bytes_per_token,
                 EvictionPolicy policy = EvictionPolicy::kPreemptNewest,
                 Bytes host_capacity = 1024 * GiB,
                 std::int64_t block_tokens = 1,
                 bool enable_prefix_cache = false);

  /// Whole-model KV byte budget for a `chips`-way pipeline over chips with
  /// `chip_hbm_capacity` of HBM each.  Sized so the BOTTLENECK stage
  /// (ceil(layers/chips) layers) fits its weights plus its layer share of
  /// every admitted token in one chip's HBM; for even layer splits this
  /// reduces to chips * HBM - weights.
  static Bytes hbm_kv_budget(const models::TransformerConfig& model,
                             Bytes chip_hbm_capacity, int chips);

  /// Whole-model KV bytes pinned per cached token.
  static Bytes token_bytes(const models::TransformerConfig& model);

  /// What an admission's prefix lookup found (all zero when the cache is
  /// disabled or the request carries no prefix tag).
  struct AdmitOutcome {
    std::int64_t lookup_tokens = 0;  ///< prefix tokens eligible for reuse
    std::int64_t prefix_hit_tokens = 0;  ///< leading prompt tokens whose KV
                                         ///< was reused (prefill starts here)
    std::int64_t shared_blocks = 0;  ///< mappings served by refcount++ on an
                                     ///< existing block (blocks saved)
    std::int64_t cow_blocks = 0;     ///< private copies of a shared partial
                                     ///< tail block (copy-on-write)
  };

  /// Reserves `tokens` worth of KV blocks for a new request.  Returns
  /// false (and reserves nothing) when it does not fit even after
  /// reclaiming cached prefix blocks; the caller keeps the request queued.
  /// `priority` feeds kPriorityVictim selection (larger = more important).
  /// With the prefix cache enabled and `prefix_id >= 0`, the first
  /// `prefix_len` tokens of the `prompt_len`-token prompt are looked up in
  /// the prefix index: hit blocks are mapped by reference instead of
  /// allocated, and `outcome->prefix_hit_tokens` tells the caller how many
  /// leading prompt tokens need no prefill (always capped at
  /// prompt_len - 1 so the final prompt token is recomputed for logits).
  /// Missed full prefix blocks are registered so later requests can share
  /// them once this request's prefill has computed their contents.
  bool try_admit(std::int64_t request_id, std::int64_t tokens,
                 std::int64_t priority = 0, std::int64_t prefix_id = -1,
                 std::int64_t prefix_len = 0, std::int64_t prompt_len = 0,
                 AdmitOutcome* outcome = nullptr);

  /// Grows a resident request by `tokens` (one per decode step).  A new
  /// block is consumed only when the growth crosses a block boundary.
  /// Returns false when the growth does not fit; the caller decides
  /// whether to evict (see `pick_eviction_victim`).
  bool try_grow(std::int64_t request_id, std::int64_t tokens = 1);

  /// Frees a request's device blocks (finished or preempted-for-
  /// recompute).  Shared prefix blocks lose one reference; fully released
  /// computed prefix blocks stay cached for future hits.
  void release(std::int64_t request_id);

  /// Moves a resident request's blocks device -> host pool.  Returns false
  /// (and moves nothing) when the host pool cannot hold them.  Shared
  /// prefix blocks are privatized on the way out (the host copy is whole).
  bool try_swap_out(std::int64_t request_id);

  /// Moves a swapped request's blocks host -> device (as private blocks —
  /// its KV returns over PCIe, not through the prefix index).  Returns
  /// false when the device budget cannot hold them; the request stays
  /// swapped.  On success the request counts as the newest admission.
  bool try_swap_in(std::int64_t request_id);

  /// Tells the manager how many leading prompt tokens of `request_id` have
  /// been prefilled, so prefix blocks this request registered become
  /// hittable once their contents exist.  No-op bookkeeping when the
  /// prefix cache is disabled.
  void note_prefilled(std::int64_t request_id, std::int64_t computed_tokens);

  // --- Fault injection / recovery (serving/fault.h) --------------------------

  /// Drops every block `request_id` holds — device blocks when resident
  /// (exact release() accounting), host-pool blocks when swapped out — as
  /// a FAULT, not a lifecycle release: the blocks' contents are lost, and
  /// the drop counts in `blocks_invalidated_total`.  Returns the number
  /// of blocks invalidated; 0 when the request holds nothing.
  std::int64_t invalidate_blocks(std::int64_t request_id);

  /// Re-materializes a RESIDENT request's device blocks from a host
  /// shadow copy after a kv-loss fault.  Models a write-through backup:
  /// succeeds when the host pool could hold the entry's blocks alongside
  /// the current swap occupancy; the device mapping is unchanged (lost
  /// blocks are re-filled in place) and the caller charges the re-fetch
  /// PCIe traffic (entry blocks * block_bytes).  Returns false — and the
  /// caller falls back to recompute — when the shadow does not fit or
  /// the request is not resident.  Counts in `blocks_restored_total`.
  bool restore_from_host(std::int64_t request_id);

  /// Reclaims EVERY cached (refcount-0) prefix block — a device failure
  /// wipes their contents, so they must stop being hittable.  Returns
  /// the number of blocks dropped (counted as invalidated, not as
  /// pressure reclaims).
  std::int64_t drop_cached_blocks();

  /// Graceful degradation: while paused, admissions neither hit nor
  /// register prefix blocks (existing shared mappings are untouched).
  void set_prefix_admission_paused(bool paused) {
    prefix_admission_paused_ = paused;
  }
  bool prefix_admission_paused() const { return prefix_admission_paused_; }

  /// Lifetime blocks dropped by faults (invalidate_blocks +
  /// drop_cached_blocks) and re-materialized from the host shadow.
  std::int64_t blocks_invalidated_total() const {
    return blocks_invalidated_total_;
  }
  std::int64_t blocks_restored_total() const { return blocks_restored_total_; }

  /// Would appending one token to `request_id` consume a new block?  The
  /// scheduler's incremental pending-growth aggregate is built on this.
  bool grow_needs_block(std::int64_t request_id) const;

  // --- Dense slot handles (hot path) -----------------------------------------
  // Entries live in a dense slot array with a free list; the id map only
  // resolves ids to slots.  A slot is stable from admission (or swap-in)
  // until the entry leaves the device (release / swap-out / invalidate),
  // then recycled.  The scheduler caches one slot per resident sequence so
  // per-decode-step grow checks index a flat array instead of hashing the
  // request id — the single hottest lookup in the simulator.

  /// Slot of a RESIDENT request (CHECKs that it is resident).
  std::int32_t resident_slot(std::int64_t request_id) const;

  /// grow_needs_block by slot: one indexed load, no hashing.
  bool grow_needs_block_slot(std::int32_t slot) const {
    return entry_slots_[static_cast<std::size_t>(slot)].tokens %
               block_tokens_ ==
           0;
  }

  /// try_grow by slot — identical semantics and accounting.  Defined
  /// in-class so the decode hot loop (one grow per decoder per step — the
  /// most-called mutation in the simulator) inlines it instead of paying a
  /// cross-TU call.
  bool try_grow_slot(std::int32_t slot, std::int64_t tokens = 1) {
    CIMTPU_CHECK(tokens >= 0);
    Entry& entry = entry_slots_[static_cast<std::size_t>(slot)];
    // At block size 1 every token is its own block, so the rounded-block
    // delta is just `tokens` — the common configuration skips both
    // ceil-divisions.
    const std::int64_t new_blocks =
        block_tokens_ == 1
            ? tokens
            : blocks_for_tokens(entry.tokens + tokens) - entry_blocks(entry);
    if (new_blocks > 0) {
      if (!fits_blocks(new_blocks)) return false;
      const std::int64_t free_now = capacity_blocks_ - occupied_blocks();
      if (new_blocks > free_now) reclaim_cached(new_blocks - free_now);
      entry.private_blocks += new_blocks;
      private_used_ += new_blocks;
      blocks_allocated_total_ += new_blocks;
      entry_block_tokens_ += new_blocks * block_tokens_;
    }
    entry.tokens += tokens;
    mapped_tokens_ += tokens;
    return true;
  }

  /// note_prefilled by slot — identical semantics.
  void note_prefilled_slot(std::int32_t slot, std::int64_t computed_tokens);

  /// Mapped KV tokens of the entry in `slot` (hot-path mirror of
  /// resident_tokens).
  std::int64_t slot_tokens(std::int32_t slot) const {
    return entry_slots_[static_cast<std::size_t>(slot)].tokens;
  }

  /// Chooses the request to preempt under the configured policy, excluding
  /// `protect` (the request currently being grown).  Returns -1 when
  /// nothing can be evicted (empty, policy kNone, or only `protect`
  /// resident).  Victim selection scans the resident set (bounded by max
  /// batch); admission recency comes from the incremental admit-order
  /// index.  The caller must release/swap the victim and re-queue it.
  std::int64_t pick_eviction_victim(std::int64_t protect) const;

  // --- Bulk decode growth (hot path) -----------------------------------------
  // A decode step grows every continuing decoder by one token.  At block
  // size 1 each grow allocates exactly one block, so when the device has
  // room for `grows` more blocks outright (no reclaim, no failure), the
  // per-grow capacity checks and global accounting collapse: the caller
  // applies grow_slot_unit_nocheck per entry and one commit_bulk_growth
  // for the step.  Releases interleaved by the caller only free blocks, so
  // the precheck is conservative and the final state is bit-identical to
  // `grows` individual try_grow_slot(slot, 1) calls.

  /// True when `grows` single-block grows are guaranteed to succeed
  /// without reclaiming cached prefix blocks.
  bool can_bulk_grow(std::int64_t grows) const {
    return block_tokens_ == 1 &&
           referenced_blocks() + grows <= capacity_blocks_ &&
           occupied_blocks() + grows <= capacity_blocks_;
  }
  /// One-token, one-block grow of `slot` with all capacity checks and
  /// global rollups hoisted to can_bulk_grow / commit_bulk_growth.
  void grow_slot_unit_nocheck(std::int32_t slot) {
    Entry& entry = entry_slots_[static_cast<std::size_t>(slot)];
    entry.tokens += 1;
    entry.private_blocks += 1;
  }
  /// Applies the global accounting for `grows` unit grows in one shot.
  void commit_bulk_growth(std::int64_t grows) {
    private_used_ += grows;
    blocks_allocated_total_ += grows;
    entry_block_tokens_ += grows * block_tokens_;
    mapped_tokens_ += grows;
  }

  bool resident(std::int64_t request_id) const {
    return entries_.count(request_id) > 0;
  }
  bool swapped(std::int64_t request_id) const {
    return host_entries_.count(request_id) > 0;
  }
  std::int64_t resident_tokens(std::int64_t request_id) const;
  std::int64_t swapped_tokens(std::int64_t request_id) const;
  std::size_t resident_count() const { return entries_.size(); }
  std::size_t swapped_count() const { return host_entries_.size(); }

  // --- Block-level accounting ------------------------------------------------
  std::int64_t block_tokens() const { return block_tokens_; }
  Bytes block_bytes() const { return block_bytes_; }
  bool prefix_cache_enabled() const { return enable_prefix_cache_; }
  std::int64_t blocks_for_tokens(std::int64_t tokens) const {
    return ceil_div(tokens, block_tokens_);
  }
  std::int64_t capacity_blocks() const { return capacity_blocks_; }
  std::int64_t host_capacity_blocks() const { return host_capacity_blocks_; }
  /// Physical blocks in use, INCLUDING cached (refcount-0) prefix blocks.
  std::int64_t occupied_blocks() const {
    return private_used_ + static_cast<std::int64_t>(shared_blocks_.size());
  }
  /// Cached prefix blocks: refcount 0, reclaimable on demand.
  std::int64_t cached_block_count() const {
    return static_cast<std::int64_t>(cached_lru_.size());
  }
  /// Blocks some resident request currently references.
  std::int64_t referenced_blocks() const {
    return occupied_blocks() - cached_block_count();
  }
  /// Could `blocks` more blocks be allocated right now (reclaiming cached
  /// prefix blocks if necessary)?
  bool fits_blocks(std::int64_t blocks) const {
    return referenced_blocks() + blocks <= capacity_blocks_;
  }
  /// Shared (prefix) block mappings held by `request_id` — test
  /// introspection for refcount assertions.
  std::int64_t shared_block_count(std::int64_t request_id) const;
  /// Last-block waste across resident mappings: 1 - mapped_tokens /
  /// mapped_block_tokens, in [0, 1).  Always 0 at block_tokens = 1.
  double internal_fragmentation() const {
    return entry_block_tokens_ == 0
               ? 0.0
               : 1.0 - static_cast<double>(mapped_tokens_) /
                           static_cast<double>(entry_block_tokens_);
  }

  /// Cumulative device blocks allocated over the manager's lifetime
  /// (admission reservations, decode growth, swap-ins; prefix-shared
  /// mappings reuse a block and do not count).  Monotone — per-step churn
  /// is the delta between two reads.
  std::int64_t blocks_allocated_total() const {
    return blocks_allocated_total_;
  }
  /// Cumulative cached (refcount-0) prefix blocks reclaimed under
  /// allocation pressure.  Monotone.
  std::int64_t cached_blocks_reclaimed_total() const {
    return cached_blocks_reclaimed_total_;
  }

  /// Publishes capacity/occupancy/churn gauges and counters into
  /// `registry` under "kv.*" names (serving/obs_registry.h).
  void publish(MetricsRegistry* registry) const;

  Bytes used() const {
    return block_bytes_ * static_cast<double>(referenced_blocks());
  }
  Bytes host_used() const {
    return block_bytes_ * static_cast<double>(host_used_blocks_);
  }
  Bytes capacity() const { return capacity_; }
  Bytes host_capacity() const { return host_capacity_; }
  Bytes bytes_per_token() const { return bytes_per_token_; }
  EvictionPolicy policy() const { return policy_; }

  /// Accounting invariant for tests: per-entry block counts match their
  /// token counts, refcounts match a full recount (and are >= 1 for every
  /// mapped shared block), cached blocks are exactly the computed
  /// refcount-0 ones, the prefix index and victim-order indices are
  /// consistent, and device/host occupancy never exceeds capacity.
  bool audit() const;

 private:
  struct Entry {
    // Field order is deliberate: the decode hot loop touches `tokens` and
    // `private_blocks` once per decoder per step (try_grow_slot), so they
    // share the entry's first cache line with `id`.
    std::int64_t id = -1;         ///< owning request (slot back-reference)
    std::int64_t tokens = 0;      ///< KV tokens mapped (reserved)
    std::int64_t private_blocks = 0;   ///< blocks owned by this entry alone
    std::int64_t admit_seq = 0;   ///< admission order for eviction policy
    std::int64_t priority = 0;    ///< larger = more important
    std::int64_t computed_tokens = 0;  ///< leading prompt tokens prefilled
    std::int64_t prefix_id = -1;
    std::int64_t prefix_len = 0;
    std::vector<std::int64_t> shared;  ///< leading shared physical block ids
  };

  struct SharedBlock {
    std::int64_t ref = 0;
    std::int64_t prefix_id = -1;
    std::int64_t block_index = 0;  ///< k: covers tokens [k*B, (k+1)*B)
    std::int64_t registrant = -1;  ///< entry whose prefill computes it
    bool computed = false;         ///< contents exist (hittable)
    std::int64_t lru_seq = -1;     ///< reclaim order while cached (ref 0)
  };

  /// Victim preference under kPriorityVictim: lowest priority first, then
  /// largest KV footprint, then newest admission, then largest id — the
  /// exact order the historical full scan produced.  Victims are found by
  /// a linear scan over the (small, bounded-by-batch) resident set at
  /// selection time; keeping a sorted index current would cost two
  /// red-black-tree updates per decoded token.
  struct VictimKey {
    std::int64_t priority;
    std::int64_t tokens;
    std::int64_t admit_seq;
    std::int64_t id;
    bool operator<(const VictimKey& other) const {
      if (priority != other.priority) return priority < other.priority;
      if (tokens != other.tokens) return tokens > other.tokens;
      if (admit_seq != other.admit_seq) return admit_seq > other.admit_seq;
      return id > other.id;
    }
  };

  std::int64_t entry_blocks(const Entry& entry) const {
    return blocks_for_tokens(entry.tokens);
  }
  void victim_index_insert(std::int64_t id, const Entry& entry);
  void victim_index_erase(std::int64_t id, const Entry& entry);
  /// Reclaims `blocks` cached prefix blocks, oldest first.  The caller
  /// must have checked fits_blocks; reclaimed blocks leave the index.
  void reclaim_cached(std::int64_t blocks);
  /// Drops one reference on a shared block; a computed block that reaches
  /// refcount 0 becomes cached, an uncomputed one is destroyed.
  void unref_shared(std::int64_t block_id);

  Bytes capacity_;
  Bytes bytes_per_token_;
  EvictionPolicy policy_;
  Bytes host_capacity_;
  std::int64_t block_tokens_;
  bool enable_prefix_cache_;
  bool prefix_admission_paused_ = false;
  Bytes block_bytes_;
  std::int64_t capacity_blocks_;
  std::int64_t host_capacity_blocks_;

  std::int64_t blocks_allocated_total_ = 0;         ///< lifetime counter
  std::int64_t cached_blocks_reclaimed_total_ = 0;  ///< lifetime counter
  std::int64_t blocks_invalidated_total_ = 0;       ///< fault drops
  std::int64_t blocks_restored_total_ = 0;          ///< host-shadow restores
  std::int64_t private_used_ = 0;      ///< device blocks owned privately
  std::int64_t host_used_blocks_ = 0;  ///< host-pool blocks
  std::int64_t mapped_tokens_ = 0;     ///< sum of resident entry tokens
  std::int64_t entry_block_tokens_ = 0;  ///< sum of resident blocks * B
  std::int64_t next_seq_ = 0;
  std::int64_t next_block_id_ = 0;
  std::int64_t next_lru_seq_ = 0;
  /// Acquires a dense slot for `entry` and indexes it; returns the slot.
  std::int32_t slot_insert(std::int64_t request_id, Entry&& entry);
  /// Unlinks the entry in `slot` from the id map and recycles the slot.
  void slot_erase(std::int32_t slot);
  Entry& slot_entry(std::int32_t slot) {
    return entry_slots_[static_cast<std::size_t>(slot)];
  }
  const Entry& slot_entry(std::int32_t slot) const {
    return entry_slots_[static_cast<std::size_t>(slot)];
  }

  std::vector<Entry> entry_slots_;        ///< dense device entries (slot API)
  std::vector<std::int32_t> free_slots_;  ///< recycled entry_slots_ indices
  std::unordered_map<std::int64_t, std::int32_t> entries_;  ///< id -> slot
  std::unordered_map<std::int64_t, Entry> host_entries_;  ///< swapped out
  std::unordered_map<std::int64_t, SharedBlock> shared_blocks_;  ///< by id
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t>
      prefix_index_;  ///< (prefix_id, block_index) -> physical block id
  std::map<std::int64_t, std::int64_t> cached_lru_;  ///< lru_seq -> block id
  std::map<std::int64_t, std::int64_t> tail_donors_;  ///< prefix_id -> entry
                                                      ///< owning the partial
                                                      ///< tail block's tokens
  std::map<std::int64_t, std::int64_t> admit_order_;  ///< admit_seq -> id
};

}  // namespace cimtpu::serving
