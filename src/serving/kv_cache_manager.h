#pragma once
// Per-request KV-cache accounting against a chip's memory capacity.
//
// Under continuous batching the KV cache — not compute — usually caps how
// many requests can decode concurrently: each resident sequence pins
// 2 * kv_len * d_model * dtype_bytes per layer (models::kv_cache_bytes_
// per_layer).  The manager tracks those footprints against the budget left
// in HBM after weights (mem/memory.h capacities), gates admission, and
// implements the eviction side of every preemption policy: recompute
// victims drop their pages outright, swap victims move them to a modeled
// host pool (restored later over PCIe instead of re-prefilled).  It is
// pure bookkeeping — deterministic and allocation-cheap — so
// million-request streams stay fast.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/units.h"
#include "models/transformer.h"

namespace cimtpu::serving {

/// What to do when a resident request cannot grow its KV cache.
enum class EvictionPolicy {
  kNone,            ///< never evict; admission simply blocks until releases
  kPreemptNewest,   ///< preempt the most recently admitted request
                    ///< (vLLM's recompute policy: its KV is dropped and the
                    ///< request re-queues from scratch)
  kSwapToHost,      ///< newest victim, but its KV pages cross PCIe into a
                    ///< modeled host pool and are restored on re-admission —
                    ///< prompt tokens are never recomputed
  kPriorityVictim,  ///< evict the lowest-priority resident request,
                    ///< breaking ties by largest KV footprint (recompute).
                    ///< The oldest resident is exempt — a forward-progress
                    ///< guarantee, else the most-progressed low-priority
                    ///< sequence is reset every pressure cycle and starves
};

std::string eviction_policy_name(EvictionPolicy policy);

class KvCacheManager {
 public:
  /// `capacity` is the device byte budget available for KV pages.
  /// `bytes_per_token` is the whole-model footprint of one cached token.
  /// `host_capacity` bounds the kSwapToHost pool; swap-outs that would
  /// overflow it fail and the caller falls back to recompute.
  KvCacheManager(Bytes capacity, Bytes bytes_per_token,
                 EvictionPolicy policy = EvictionPolicy::kPreemptNewest,
                 Bytes host_capacity = 1024 * GiB);

  /// Whole-model KV byte budget for a `chips`-way pipeline over chips with
  /// `chip_hbm_capacity` of HBM each.  Sized so the BOTTLENECK stage
  /// (ceil(layers/chips) layers) fits its weights plus its layer share of
  /// every admitted token in one chip's HBM; for even layer splits this
  /// reduces to chips * HBM - weights.
  static Bytes hbm_kv_budget(const models::TransformerConfig& model,
                             Bytes chip_hbm_capacity, int chips);

  /// Whole-model KV bytes pinned per cached token.
  static Bytes token_bytes(const models::TransformerConfig& model);

  /// Reserves `tokens` worth of KV for a new request.  Returns false (and
  /// reserves nothing) when it does not fit; the caller keeps the request
  /// queued.  `priority` feeds kPriorityVictim selection (larger = more
  /// important).
  bool try_admit(std::int64_t request_id, std::int64_t tokens,
                 std::int64_t priority = 0);

  /// Grows a resident request by `tokens` (one per decode step).  Returns
  /// false when the growth does not fit; the caller decides whether to
  /// evict (see `pick_eviction_victim`).
  bool try_grow(std::int64_t request_id, std::int64_t tokens = 1);

  /// Frees a request's device pages (finished or preempted-for-recompute).
  void release(std::int64_t request_id);

  /// Moves a resident request's pages device -> host pool.  Returns false
  /// (and moves nothing) when the host pool cannot hold them.
  bool try_swap_out(std::int64_t request_id);

  /// Moves a swapped request's pages host -> device.  Returns false when
  /// the device budget cannot hold them; the request stays swapped.  On
  /// success the request counts as the newest admission (it re-entered).
  bool try_swap_in(std::int64_t request_id);

  /// Chooses the request to preempt under the configured policy, excluding
  /// `protect` (the request currently being grown).  Returns -1 when
  /// nothing can be evicted (empty, policy kNone, or only `protect`
  /// resident).  The caller must release/swap the victim and re-queue it.
  std::int64_t pick_eviction_victim(std::int64_t protect) const;

  bool resident(std::int64_t request_id) const {
    return entries_.count(request_id) > 0;
  }
  bool swapped(std::int64_t request_id) const {
    return host_entries_.count(request_id) > 0;
  }
  std::int64_t resident_tokens(std::int64_t request_id) const;
  std::int64_t swapped_tokens(std::int64_t request_id) const;
  std::size_t resident_count() const { return entries_.size(); }
  std::size_t swapped_count() const { return host_entries_.size(); }
  Bytes used() const { return used_; }
  Bytes host_used() const { return host_used_; }
  Bytes capacity() const { return capacity_; }
  Bytes host_capacity() const { return host_capacity_; }
  Bytes bytes_per_token() const { return bytes_per_token_; }
  EvictionPolicy policy() const { return policy_; }

  /// Accounting invariant for tests: `used()`/`host_used()` match the sum
  /// of per-entry footprints to FP tolerance, and never exceed capacity.
  bool audit() const;

 private:
  struct Entry {
    std::int64_t tokens = 0;
    std::int64_t admit_seq = 0;   ///< admission order for eviction policy
    std::int64_t priority = 0;    ///< larger = more important
  };

  Bytes capacity_;
  Bytes bytes_per_token_;
  EvictionPolicy policy_;
  Bytes host_capacity_;
  Bytes used_ = 0;
  Bytes host_used_ = 0;
  std::int64_t next_seq_ = 0;
  std::unordered_map<std::int64_t, Entry> entries_;       ///< on device
  std::unordered_map<std::int64_t, Entry> host_entries_;  ///< swapped out
};

}  // namespace cimtpu::serving
