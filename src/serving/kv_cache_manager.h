#pragma once
// Per-request KV-cache accounting against a chip's memory capacity.
//
// Under continuous batching the KV cache — not compute — usually caps how
// many requests can decode concurrently: each resident sequence pins
// 2 * kv_len * d_model * dtype_bytes per layer (models::kv_cache_bytes_
// per_layer).  The manager tracks those footprints against the budget left
// in HBM after weights (mem/memory.h capacities), gates admission, and
// implements preempt-by-recompute eviction for decode-time growth
// pressure.  It is pure bookkeeping — deterministic and allocation-cheap —
// so million-request streams stay fast.

#include <cstdint>
#include <unordered_map>

#include "common/units.h"
#include "models/transformer.h"

namespace cimtpu::serving {

/// What to do when a resident request cannot grow its KV cache.
enum class EvictionPolicy {
  kNone,           ///< never evict; admission simply blocks until releases
  kPreemptNewest,  ///< preempt the most recently admitted request
                   ///< (vLLM's recompute policy: its KV is dropped and the
                   ///< request re-queues from scratch)
};

class KvCacheManager {
 public:
  /// `capacity` is the byte budget available for KV pages.
  /// `bytes_per_token` is the whole-model footprint of one cached token.
  KvCacheManager(Bytes capacity, Bytes bytes_per_token,
                 EvictionPolicy policy = EvictionPolicy::kPreemptNewest);

  /// Whole-model KV byte budget for a `chips`-way pipeline over chips with
  /// `chip_hbm_capacity` of HBM each.  Sized so the BOTTLENECK stage
  /// (ceil(layers/chips) layers) fits its weights plus its layer share of
  /// every admitted token in one chip's HBM; for even layer splits this
  /// reduces to chips * HBM - weights.
  static Bytes hbm_kv_budget(const models::TransformerConfig& model,
                             Bytes chip_hbm_capacity, int chips);

  /// Whole-model KV bytes pinned per cached token.
  static Bytes token_bytes(const models::TransformerConfig& model);

  /// Reserves `tokens` worth of KV for a new request.  Returns false (and
  /// reserves nothing) when it does not fit; the caller keeps the request
  /// queued.
  bool try_admit(std::int64_t request_id, std::int64_t tokens);

  /// Grows a resident request by `tokens` (one per decode step).  Returns
  /// false when the growth does not fit; the caller decides whether to
  /// evict (see `pick_eviction_victim`).
  bool try_grow(std::int64_t request_id, std::int64_t tokens = 1);

  /// Frees a request's pages (finished or preempted).
  void release(std::int64_t request_id);

  /// Chooses the request to preempt under the configured policy, excluding
  /// `protect` (the request currently being grown).  Returns -1 when
  /// nothing can be evicted (empty, policy kNone, or only `protect`
  /// resident).  The caller must `release` the victim and re-queue it.
  std::int64_t pick_eviction_victim(std::int64_t protect) const;

  bool resident(std::int64_t request_id) const {
    return entries_.count(request_id) > 0;
  }
  std::int64_t resident_tokens(std::int64_t request_id) const;
  std::size_t resident_count() const { return entries_.size(); }
  Bytes used() const { return used_; }
  Bytes capacity() const { return capacity_; }
  Bytes bytes_per_token() const { return bytes_per_token_; }
  EvictionPolicy policy() const { return policy_; }

 private:
  struct Entry {
    std::int64_t tokens = 0;
    std::int64_t admit_seq = 0;  ///< admission order for eviction policy
  };

  Bytes capacity_;
  Bytes bytes_per_token_;
  EvictionPolicy policy_;
  Bytes used_ = 0;
  std::int64_t next_seq_ = 0;
  std::unordered_map<std::int64_t, Entry> entries_;
};

}  // namespace cimtpu::serving
