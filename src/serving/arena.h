#ifndef CIMTPU_SERVING_ARENA_H_
#define CIMTPU_SERVING_ARENA_H_

// Per-run step arena: the serving loop's step-scoped containers, owned in
// one place and recycled every step.
//
//   - The StepRecord the engine hands to the scheduler each step.  The
//     scheduler `clear()`s it (capacity retained), so after warm-up no
//     step allocates; `warm()` pre-reserves every participant vector to
//     its steady-state bound so even the FIRST full batch stays off the
//     heap.
//   - A process-wide allocation counter the zero-allocation test links a
//     replacement global operator new against, turning "the hot loop does
//     not allocate" from a comment into an assertion.
//
// The arena is deliberately NOT a byte-bump allocator: the hot path's
// containers are a handful of flat vectors with stable steady-state
// capacity, so ownership + pre-reservation already yields zero
// steady-state allocation without touching container types.

#include <atomic>
#include <cstdint>

#include "serving/scheduler.h"

namespace cimtpu::serving {

/// Test hook: a process-wide count of heap allocations.  Production code
/// never bumps it — it stays 0 unless a test binary links a replacement
/// global operator new that calls note_heap_allocation() (see
/// serving_arena_test.cpp).  Relaxed ordering: the tests that read it are
/// single-threaded.
std::atomic<std::int64_t>& heap_allocation_count();

/// Called by the test's replacement operator new on every allocation.
inline void note_heap_allocation() {
  heap_allocation_count().fetch_add(1, std::memory_order_relaxed);
}

/// Owns the per-step scratch of one serving run (one engine).  Not
/// thread-safe; sweep workers each own their engine and therefore their
/// arena.
class StepArena {
 public:
  /// Pre-reserves the record's participant vectors to the scheduler's
  /// steady-state bounds: at most `max_batch` decode participants (and
  /// finishes/preemptions/swaps) and `max_prefill_batch` prefill
  /// participants per step.
  void warm(int max_batch, int max_prefill_batch);

  /// The run's reusable step record; the scheduler clears it per step.
  StepRecord& record() { return record_; }

 private:
  StepRecord record_;
};

}  // namespace cimtpu::serving

#endif  // CIMTPU_SERVING_ARENA_H_
