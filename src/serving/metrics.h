#pragma once
// Distributional latency metrics for the serving simulator: percentile
// math, the TTFT/TPOT/end-to-end summaries SLO reports are built from,
// and the event counters (preemptions per policy, swap traffic, chunked
// prefill activity) the scheduler accumulates across a run.

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace cimtpu::serving {

/// Percentile of `values` with linear interpolation between closest ranks
/// (the same convention as numpy.percentile's default).  `p` is in
/// [0, 100].  Returns 0 for an empty set.  `values` is taken by value and
/// sorted internally.
double percentile(std::vector<double> values, double p);

/// Five-number summary of a latency sample.
struct LatencySummary {
  std::int64_t count = 0;
  Seconds mean = 0;
  Seconds p50 = 0;
  Seconds p95 = 0;
  Seconds p99 = 0;
  Seconds max = 0;
};

LatencySummary summarize_latencies(const std::vector<double>& values);

/// Scheduler event counters, split by mechanism so policy behaviour is
/// observable: recompute preemptions drop KV and re-queue the request from
/// scratch, swap preemptions move KV pages to the host pool and restore
/// them later (no prompt recompute).
struct ServingCounters {
  std::int64_t preemptions_recompute = 0;  ///< KV dropped, prompt recomputed
  std::int64_t preemptions_swap = 0;       ///< KV swapped out to the host pool
  std::int64_t swap_ins = 0;               ///< sequences restored from host
  Bytes swap_out_bytes = 0;                ///< device -> host PCIe traffic
  Bytes swap_in_bytes = 0;                 ///< host -> device PCIe traffic
  std::int64_t chunked_prefill_steps = 0;  ///< prefill steps that split a prompt

  std::int64_t total_preemptions() const;
  Bytes total_swap_bytes() const;
};

}  // namespace cimtpu::serving
