#pragma once
// Distributional latency metrics for the serving simulator: percentile
// math, the TTFT/TPOT/end-to-end summaries SLO reports are built from,
// the per-tenant breakdown (plus Jain's fairness index) multi-tenant QoS
// policies are judged by, and the event counters (preemptions per policy,
// swap traffic, chunked prefill activity, paged-KV prefix-cache hits) the
// scheduler accumulates across a run.

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "serving/stats.h"  // percentile math (shared with the registry)

namespace cimtpu::serving {

class MetricsRegistry;

/// Five-number summary of a latency sample.
struct LatencySummary {
  std::int64_t count = 0;
  Seconds mean = 0;
  Seconds p50 = 0;
  Seconds p95 = 0;
  Seconds p99 = 0;
  Seconds max = 0;
};

LatencySummary summarize_latencies(const std::vector<double>& values);

/// Jain's fairness index of an allocation: (sum x)^2 / (n * sum x^2), in
/// (0, 1] — 1.0 when every x is equal, 1/n when one party takes all.  By
/// convention an empty or all-zero allocation is perfectly fair (1.0).
/// For weighted fairness pass weight-NORMALIZED allocations (x_i / w_i).
double jain_fairness_index(const std::vector<double>& values);

/// Per-tenant slice of a serving run: the QoS a weighted-fair admission
/// policy trades between tenants.  `weight` is the share the deployment's
/// AdmissionConfig assigns the tenant (1.0 when unconfigured); goodput is
/// the tenant's completed output tokens over the run's makespan, so
/// tenant goodput ratios track admitted-token share ratios.
struct TenantMetrics {
  std::int64_t tenant_id = 0;
  double weight = 1.0;
  std::int64_t num_requests = 0;  ///< arrivals within the simulated window
  std::int64_t completed = 0;
  std::int64_t generated_tokens = 0;  ///< across completed requests
  LatencySummary ttft;
  LatencySummary e2e;
  double goodput_tokens_per_second = 0;
};

/// Scheduler event counters, split by mechanism so policy behaviour is
/// observable: recompute preemptions drop KV and re-queue the request from
/// scratch, swap preemptions move KV pages to the host pool and restore
/// them later (no prompt recompute).
struct ServingCounters {
  std::int64_t preemptions_recompute = 0;  ///< KV dropped, prompt recomputed
  std::int64_t preemptions_swap = 0;       ///< KV swapped out to the host pool
  std::int64_t swap_ins = 0;               ///< sequences restored from host
  Bytes swap_out_bytes = 0;                ///< device -> host PCIe traffic
  Bytes swap_in_bytes = 0;                 ///< host -> device PCIe traffic
  std::int64_t chunked_prefill_steps = 0;  ///< prefill steps that split a prompt

  // Paged-KV prefix caching (all 0 with the cache disabled): at each
  // admission carrying a prefix tag, `prefix_lookup_tokens` counts the
  // prefix tokens eligible for reuse and `prefix_hit_tokens` the tokens
  // actually served from cached blocks (prefill skipped for them);
  // `prefix_shared_blocks` counts block mappings satisfied by a
  // refcount++ on an existing physical block (device blocks saved), and
  // `prefix_cow_blocks` the private copies made of a shared partial tail
  // block (copy-on-write at the certain divergence point).
  std::int64_t prefix_lookup_tokens = 0;
  std::int64_t prefix_hit_tokens = 0;
  std::int64_t prefix_shared_blocks = 0;
  std::int64_t prefix_cow_blocks = 0;

  // Load shedding, split by cause.  A shed request arrived but will never
  // complete; all three counters advance whether or not tracing is enabled
  // (tracing only adds events, never counters).  `shed_deadline` counts
  // requests dropped by admission control because their TTFT deadline
  // provably could not be met (EDF shedding); `shed_horizon` counts
  // requests still waiting or in flight when `max_sim_seconds` stopped
  // the run; `shed_fault` counts requests dropped by the fault subsystem
  // (recovery disabled, or the retry budget was exhausted — serving/
  // fault.h).  Always 0 with fault injection off.
  std::int64_t shed_deadline = 0;
  std::int64_t shed_horizon = 0;
  std::int64_t shed_fault = 0;

  std::int64_t total_preemptions() const;
  std::int64_t total_shed() const;
  Bytes total_swap_bytes() const;
  /// prefix_hit_tokens / prefix_lookup_tokens; 0 when nothing was looked
  /// up (cache disabled or no tagged requests).
  double prefix_hit_rate() const;

  /// Publishes every counter into `registry` under "scheduler.*" names
  /// (serving/obs_registry.h).
  void publish(MetricsRegistry* registry) const;
};

}  // namespace cimtpu::serving
