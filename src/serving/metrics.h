#pragma once
// Distributional latency metrics for the serving simulator: percentile
// math and the TTFT/TPOT/end-to-end summaries SLO reports are built from.

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace cimtpu::serving {

/// Percentile of `values` with linear interpolation between closest ranks
/// (the same convention as numpy.percentile's default).  `p` is in
/// [0, 100].  Returns 0 for an empty set.  `values` is taken by value and
/// sorted internally.
double percentile(std::vector<double> values, double p);

/// Five-number summary of a latency sample.
struct LatencySummary {
  std::int64_t count = 0;
  Seconds mean = 0;
  Seconds p50 = 0;
  Seconds p95 = 0;
  Seconds p99 = 0;
  Seconds max = 0;
};

LatencySummary summarize_latencies(const std::vector<double>& values);

}  // namespace cimtpu::serving
