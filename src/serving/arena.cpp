#include "serving/arena.h"

#include "common/status.h"

namespace cimtpu::serving {

std::atomic<std::int64_t>& heap_allocation_count() {
  static std::atomic<std::int64_t> count{0};
  return count;
}

void StepArena::warm(int max_batch, int max_prefill_batch) {
  CIMTPU_CHECK(max_batch >= 1 && max_prefill_batch >= 1);
  const auto batch = static_cast<std::size_t>(max_batch);
  const auto prefill = static_cast<std::size_t>(max_prefill_batch);
  record_.kv_lens.reserve(batch);
  record_.chunk_lens.reserve(prefill);
  record_.prev_lens.reserve(prefill);
  record_.decode_groups.reserve(batch);
  record_.first_token_ids.reserve(prefill);
  record_.finished_ids.reserve(batch);
  record_.preempted_ids.reserve(batch);
  record_.swapped_out_ids.reserve(batch);
  record_.swapped_in_ids.reserve(batch);
  record_.shed_ids.reserve(batch);
}

}  // namespace cimtpu::serving
