#include "serving/stats.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace cimtpu::serving {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  CIMTPU_CONFIG_CHECK(p >= 0.0 && p <= 100.0,
                      "percentile " << p << " outside [0, 100]");
  CIMTPU_CHECK(!sorted.empty());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::vector<double> values, double p) {
  CIMTPU_CONFIG_CHECK(p >= 0.0 && p <= 100.0,
                      "percentile " << p << " outside [0, 100]");
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

std::vector<double> exponential_bounds(double start, double factor,
                                       int count) {
  CIMTPU_CONFIG_CHECK(start > 0, "histogram bounds must start > 0");
  CIMTPU_CONFIG_CHECK(factor > 1, "histogram bound factor must be > 1");
  CIMTPU_CONFIG_CHECK(count >= 1, "histogram needs >= 1 bound");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

FixedBucketHistogram::FixedBucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    CIMTPU_CONFIG_CHECK(bounds_[i - 1] < bounds_[i],
                        "histogram bounds must be strictly ascending: bound "
                            << i << " (" << bounds_[i]
                            << ") <= bound " << i - 1 << " ("
                            << bounds_[i - 1] << ")");
  }
}

void FixedBucketHistogram::observe(double value) {
  // First bucket covers (-inf, bounds_[0]]; the final (overflow) bucket
  // covers (bounds_.back(), +inf).  Successive observations cluster
  // (steady decode repeats the same step latency and batch), so try the
  // previous bucket with two compares before binary-searching.
  const std::size_t n = bounds_.size();
  std::size_t bucket = last_bucket_;
  const bool above_lower = bucket == 0 || value > bounds_[bucket - 1];
  const bool within_upper = bucket >= n || value <= bounds_[bucket];
  if (!(above_lower && within_upper)) {
    bucket = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    last_bucket_ = bucket;
  }
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

FixedBucketHistogram FixedBucketHistogram::from_parts(
    std::vector<double> bounds, std::vector<std::int64_t> counts,
    std::int64_t count, double sum, double min, double max) {
  FixedBucketHistogram histogram(std::move(bounds));
  CIMTPU_CHECK(counts.size() == histogram.bounds_.size() + 1);
  histogram.counts_ = std::move(counts);
  histogram.count_ = count;
  histogram.sum_ = sum;
  histogram.min_ = min;
  histogram.max_ = max;
  return histogram;
}

double FixedBucketHistogram::quantile(double p) const {
  CIMTPU_CONFIG_CHECK(p >= 0.0 && p <= 100.0,
                      "quantile " << p << " outside [0, 100]");
  if (count_ == 0) return 0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Target rank over the cumulative distribution, numpy-style (0 maps to
  // the first observation, count-1 to the last).
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::int64_t cumulative = 0;
  for (std::size_t bucket = 0; bucket < counts_.size(); ++bucket) {
    if (counts_[bucket] == 0) continue;
    const std::int64_t in_bucket = counts_[bucket];
    // Observations in this bucket occupy ranks [cumulative,
    // cumulative + in_bucket - 1].
    if (rank <= static_cast<double>(cumulative + in_bucket - 1)) {
      // Bucket edges, clamped to the tracked extremes so the estimate
      // never leaves the observed range.
      double lo = bucket == 0 ? min_ : bounds_[bucket - 1];
      double hi = bucket < bounds_.size() ? bounds_[bucket] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo) return lo;
      if (in_bucket == 1) return 0.5 * (lo + hi);  // unknown position
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket - 1);
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return max_;  // numeric slack: the last observation
}

}  // namespace cimtpu::serving
