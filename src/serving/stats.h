#pragma once
// Shared summary-statistics helpers for the serving stack: exact
// percentile math (used by the latency rollups in serving/metrics.h) and
// a fixed-bucket histogram (used by the observability registry,
// serving/obs_registry.h).  One implementation for both consumers, so the
// interpolation convention can never drift between the aggregate metrics
// and the registry's histogram quantile estimates.

#include <cstdint>
#include <vector>

namespace cimtpu::serving {

/// Percentile of `values` with linear interpolation between closest ranks
/// (the same convention as numpy.percentile's default).  `p` is in
/// [0, 100].  Returns 0 for an empty set.  `values` is taken by value and
/// sorted internally.
double percentile(std::vector<double> values, double p);

/// Percentile of an already-sorted, NON-EMPTY sample (the hot inner form:
/// summarize_latencies sorts once and takes several percentiles).
double percentile_sorted(const std::vector<double>& sorted, double p);

/// `count` strictly-ascending bucket upper bounds starting at `start` and
/// multiplying by `factor` (> 1) — the usual latency-histogram layout.
std::vector<double> exponential_bounds(double start, double factor,
                                       int count);

/// A histogram over fixed, strictly-ascending bucket upper bounds plus an
/// implicit overflow bucket.  Observing is allocation-free (an increment
/// after a binary search over the bounds), so it is safe on the serving
/// hot path; quantiles are ESTIMATES reconstructed by linear
/// interpolation inside the covering bucket (exact at the tracked min and
/// max).  Default-constructed histograms have a single overflow bucket —
/// they still count/sum/min/max exactly, only the quantile shape is lost.
class FixedBucketHistogram {
 public:
  FixedBucketHistogram() : counts_(1, 0) {}
  explicit FixedBucketHistogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1, the final
  /// entry being the overflow bucket (> last bound).
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }

  /// Rebuilds a histogram from exported state — the multi-process sweep
  /// driver's IPC path (serving/metrics_codec.h).  `counts` must have
  /// `bounds.size() + 1` entries; count/sum/min/max are restored verbatim,
  /// so the round-trip is exact.
  static FixedBucketHistogram from_parts(std::vector<double> bounds,
                                         std::vector<std::int64_t> counts,
                                         std::int64_t count, double sum,
                                         double min, double max);

  /// Estimated percentile (`p` in [0, 100]) of the observed sample:
  /// locates the bucket covering the target rank and interpolates
  /// linearly across it, clamping bucket edges to the tracked min/max so
  /// quantile(0) == min() and quantile(100) == max() exactly.  Returns 0
  /// for an empty histogram.
  double quantile(double p) const;

 private:
  std::vector<double> bounds_;        ///< strictly ascending upper bounds
  std::vector<std::int64_t> counts_;  ///< bounds_.size() + 1 (overflow last)
  std::size_t last_bucket_ = 0;       ///< observe() locality memo
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace cimtpu::serving
