#include "serving/request_gen.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace cimtpu::serving {

std::string arrival_process_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kDiurnal: return "diurnal";
  }
  return "?";
}

void LengthSpec::validate() const {
  switch (kind) {
    case LengthDistribution::kFixed:
      CIMTPU_CONFIG_CHECK(mean >= 1, "fixed length must be >= 1");
      break;
    case LengthDistribution::kUniform:
    case LengthDistribution::kZipf:
      CIMTPU_CONFIG_CHECK(min_len >= 1 && max_len >= min_len,
                          "length bounds need 1 <= min (" << min_len
                          << ") <= max (" << max_len << ")");
      break;
  }
  if (kind == LengthDistribution::kZipf) {
    CIMTPU_CONFIG_CHECK(zipf_alpha > 0, "zipf_alpha must be positive");
  }
}

void RequestStreamConfig::validate() const {
  CIMTPU_CONFIG_CHECK(num_requests >= 1, "stream needs >= 1 request");
  CIMTPU_CONFIG_CHECK(arrival_rate > 0, "arrival_rate must be positive");
  CIMTPU_CONFIG_CHECK(priority_classes >= 1,
                      "priority_classes must be >= 1");
  CIMTPU_CONFIG_CHECK(num_tenants >= 1, "num_tenants must be >= 1");
  CIMTPU_CONFIG_CHECK(
      tenant_weights.empty() ||
          tenant_weights.size() == static_cast<std::size_t>(num_tenants),
      "tenant_weights has " << tenant_weights.size() << " entries for "
                            << num_tenants << " tenants");
  for (double weight : tenant_weights) {
    CIMTPU_CONFIG_CHECK(weight > 0, "tenant weights must be positive");
  }
  CIMTPU_CONFIG_CHECK(prefix_pool_size >= 0,
                      "prefix_pool_size must be >= 0");
  CIMTPU_CONFIG_CHECK(prefix_len_tokens >= 0,
                      "prefix_len_tokens must be >= 0");
  CIMTPU_CONFIG_CHECK(
      (prefix_pool_size > 0) == (prefix_len_tokens > 0),
      "prefix_pool_size (" << prefix_pool_size << ") and prefix_len_tokens ("
                           << prefix_len_tokens
                           << ") must be set together (both 0 disables "
                              "shared prefixes)");
  if (process == ArrivalProcess::kBursty) {
    CIMTPU_CONFIG_CHECK(burst_factor > 1.0, "burst_factor must exceed 1");
    CIMTPU_CONFIG_CHECK(burst_fraction > 0 && burst_fraction < 1,
                        "burst_fraction must be in (0, 1)");
  }
  if (process == ArrivalProcess::kDiurnal) {
    CIMTPU_CONFIG_CHECK(diurnal_period_s > 0,
                        "diurnal_period_s must be positive");
    // amplitude 1 lets the rate touch zero at the trough; beyond 1 the
    // "rate" would go negative, which thinning cannot represent.
    CIMTPU_CONFIG_CHECK(diurnal_amplitude >= 0 && diurnal_amplitude <= 1,
                        "diurnal_amplitude must be in [0, 1], got "
                            << diurnal_amplitude);
  }
  CIMTPU_CONFIG_CHECK(ttft_deadline_s >= 0,
                      "ttft_deadline_s must be >= 0 (0 disables)");
  CIMTPU_CONFIG_CHECK(tpot_deadline_s >= 0,
                      "tpot_deadline_s must be >= 0 (0 disables)");
  if (ttft_deadline_s > 0 || tpot_deadline_s > 0) {
    CIMTPU_CONFIG_CHECK(deadline_jitter >= 0 && deadline_jitter < 1,
                        "deadline_jitter must be in [0, 1), got "
                            << deadline_jitter);
  }
  prompt.validate();
  output.validate();
}

LengthSampler::LengthSampler(const LengthSpec& spec) : spec_(spec) {
  spec_.validate();
  if (spec_.kind == LengthDistribution::kZipf) {
    const std::int64_t support = spec_.max_len - spec_.min_len + 1;
    zipf_cdf_.reserve(static_cast<std::size_t>(support));
    double cumulative = 0;
    for (std::int64_t rank = 1; rank <= support; ++rank) {
      cumulative += std::pow(static_cast<double>(rank), -spec_.zipf_alpha);
      zipf_cdf_.push_back(cumulative);
    }
  }
}

std::int64_t LengthSampler::sample(Rng& rng) const {
  switch (spec_.kind) {
    case LengthDistribution::kFixed:
      return spec_.mean;
    case LengthDistribution::kUniform:
      return rng.uniform_int(spec_.min_len, spec_.max_len);
    case LengthDistribution::kZipf: {
      const double target = rng.uniform() * zipf_cdf_.back();
      const auto it =
          std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), target);
      const std::int64_t rank = it - zipf_cdf_.begin();  // 0-based
      return spec_.min_len + rank;
    }
  }
  return spec_.mean;
}

namespace {

/// Exponential variate with the given rate (inverse-CDF on (0, 1]).
Seconds exponential(Rng& rng, double rate) {
  // 1 - uniform() lies in (0, 1]; log of it is finite.
  return -std::log(1.0 - rng.uniform()) / rate;
}

constexpr double kTwoPi = 6.283185307179586;

/// Next arrival of a sinusoidally modulated Poisson process after `now`,
/// via Lewis-Shedler thinning: candidates at the constant peak rate, each
/// accepted with probability rate(candidate) / peak.
Seconds diurnal_arrival(Rng& rng, const RequestStreamConfig& config,
                        Seconds now) {
  const double peak = config.arrival_rate * (1.0 + config.diurnal_amplitude);
  for (;;) {
    now += exponential(rng, peak);
    const double rate =
        config.arrival_rate *
        (1.0 + config.diurnal_amplitude *
                   std::sin(kTwoPi * now / config.diurnal_period_s +
                            config.diurnal_phase));
    if (rng.uniform() * peak <= rate) return now;
  }
}

}  // namespace

std::vector<Request> generate_requests(const RequestStreamConfig& config) {
  config.validate();
  Rng rng(config.seed);
  // Decoupled stream for priorities: arrivals and lengths stay
  // bit-identical for a given seed whatever priority_classes is set to.
  Rng priority_rng(config.seed ^ 0xa5a5c3c3deadbeefull);
  // Third decoupled stream for tenant assignment, same reasoning: the
  // tenant model never perturbs arrivals, lengths, or priorities.
  Rng tenant_rng(config.seed ^ 0x3c3c5a5a0badf00dull);
  // Fourth decoupled stream for shared-prefix assignment: enabling system
  // prompts never perturbs any other field of the trace.
  Rng prefix_rng(config.seed ^ 0x517e0fcafe5eed11ull);
  // Fifth decoupled stream for SLO deadline jitter: consulted only when
  // deadlines are enabled, so every pre-SLO stream is bit-identical.
  Rng deadline_rng(config.seed ^ 0x7d1f5105d11e5eedull);
  const bool deadlines =
      config.ttft_deadline_s > 0 || config.tpot_deadline_s > 0;
  const LengthSampler prompt_sampler(config.prompt);
  const LengthSampler output_sampler(config.output);
  // Cumulative tenant weights for the skewed-assignment draw.
  std::vector<double> tenant_cdf;
  if (config.num_tenants > 1 && !config.tenant_weights.empty()) {
    tenant_cdf.reserve(config.tenant_weights.size());
    double cumulative = 0;
    for (double weight : config.tenant_weights) {
      cumulative += weight;
      tenant_cdf.push_back(cumulative);
    }
  }

  // Two-state MMPP rates chosen so the time-average rate is arrival_rate:
  //   avg = f * burst_rate + (1 - f) * calm_rate,  burst_rate = B * calm_rate.
  const double calm_rate =
      config.arrival_rate /
      (1.0 + config.burst_fraction * (config.burst_factor - 1.0));
  const double burst_rate = calm_rate * config.burst_factor;
  // Mean dwell times: bursts last long enough to cover ~16 burst arrivals.
  const Seconds mean_burst_dwell = 16.0 / burst_rate;
  const Seconds mean_calm_dwell =
      mean_burst_dwell * (1.0 - config.burst_fraction) / config.burst_fraction;

  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(config.num_requests));

  Seconds now = 0;
  bool in_burst = false;
  Seconds state_ends = config.process == ArrivalProcess::kBursty
                           ? exponential(rng, 1.0 / mean_calm_dwell)
                           : 0;
  for (std::int64_t id = 0; id < config.num_requests; ++id) {
    if (config.process == ArrivalProcess::kPoisson) {
      now += exponential(rng, config.arrival_rate);
    } else if (config.process == ArrivalProcess::kDiurnal) {
      now = diurnal_arrival(rng, config, now);
    } else {
      // Draw the next arrival in the current state; cross state boundaries
      // until the arrival lands inside the active state's window.
      for (;;) {
        const double rate = in_burst ? burst_rate : calm_rate;
        const Seconds candidate = now + exponential(rng, rate);
        if (candidate <= state_ends) {
          now = candidate;
          break;
        }
        now = state_ends;
        in_burst = !in_burst;
        const Seconds dwell = in_burst ? mean_burst_dwell : mean_calm_dwell;
        state_ends = now + exponential(rng, 1.0 / dwell);
      }
    }
    Request request;
    request.id = id;
    request.arrival_time = now;
    request.prompt_len = prompt_sampler.sample(rng);
    // Every request decodes at least one token (emitted by prefill).
    request.output_len = std::max<std::int64_t>(1, output_sampler.sample(rng));
    request.priority =
        config.priority_classes > 1
            ? priority_rng.uniform_int(0, config.priority_classes - 1)
            : 0;
    if (config.num_tenants > 1) {
      if (tenant_cdf.empty()) {
        request.tenant_id = tenant_rng.uniform_int(0, config.num_tenants - 1);
      } else {
        const double target = tenant_rng.uniform() * tenant_cdf.back();
        request.tenant_id =
            std::lower_bound(tenant_cdf.begin(), tenant_cdf.end(), target) -
            tenant_cdf.begin();
      }
    }
    if (config.prefix_pool_size > 0) {
      // Shared system prompt: prepended to the sampled user prompt, so the
      // total prompt grows by the prefix length.
      request.prefix_id =
          prefix_rng.uniform_int(0, config.prefix_pool_size - 1);
      request.prefix_len = config.prefix_len_tokens;
      request.prompt_len += config.prefix_len_tokens;
    }
    if (deadlines) {
      // One shared jitter factor per request: a request that tolerates a
      // loose TTFT also tolerates a loose TPOT (per-class SLOs, not
      // per-metric noise).
      const double scale =
          1.0 + config.deadline_jitter * (2.0 * deadline_rng.uniform() - 1.0);
      request.ttft_deadline = config.ttft_deadline_s * scale;
      request.tpot_deadline = config.tpot_deadline_s * scale;
    }
    requests.push_back(request);
  }
  return requests;
}

std::vector<Request> merge_request_traces(
    const std::vector<std::vector<Request>>& streams) {
  std::vector<Request> merged;
  std::size_t total = 0;
  for (const std::vector<Request>& stream : streams) total += stream.size();
  merged.reserve(total);
  for (const std::vector<Request>& stream : streams) {
    merged.insert(merged.end(), stream.begin(), stream.end());
  }
  // stable_sort keeps concatenation order among equal arrivals, so the
  // merge is deterministic whatever the per-stream phases do.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  for (std::size_t i = 0; i < merged.size(); ++i) {
    merged[i].id = static_cast<std::int64_t>(i);
  }
  return merged;
}

}  // namespace cimtpu::serving
