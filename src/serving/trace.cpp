#include "serving/trace.h"

#include <sys/stat.h>

#include <map>
#include <sstream>

#include "common/status.h"
#include "serving/fault.h"
#include "sim/trace.h"

namespace cimtpu::serving {

void TraceConfig::validate() const {
  CIMTPU_CONFIG_CHECK(sample_interval >= 0,
                      "trace sample_interval must be >= 0 (0 = disabled), "
                      "got " << sample_interval);
  CIMTPU_CONFIG_CHECK(!enabled || dir.empty() || !label.empty(),
                      "trace label must be non-empty when writing files");
}

const char* trace_event_type_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kArrive: return "arrive";
    case TraceEventType::kAdmit: return "admit";
    case TraceEventType::kPrefixHit: return "prefix_hit";
    case TraceEventType::kPrefillChunk: return "prefill_chunk";
    case TraceEventType::kFirstToken: return "first_token";
    case TraceEventType::kDecodeEnter: return "decode_enter";
    case TraceEventType::kPreempt: return "preempt";
    case TraceEventType::kSwapOut: return "swap_out";
    case TraceEventType::kSwapIn: return "swap_in";
    case TraceEventType::kFinish: return "finish";
    case TraceEventType::kShed: return "shed";
    case TraceEventType::kFault: return "fault";
    case TraceEventType::kRecover: return "recover";
    case TraceEventType::kDegrade: return "degrade";
    case TraceEventType::kRoute: return "route";
    case TraceEventType::kKvTransfer: return "kv_transfer";
    case TraceEventType::kStep: return "step";
  }
  return "unknown";
}

ServingTrace::ServingTrace(TraceConfig config) : config_(std::move(config)) {
  config_.validate();
}

TraceEvent& ServingTrace::push(TraceEventType type, std::int64_t request_id) {
  TraceEvent& event = events_.emplace_back();
  event.type = type;
  event.step = current_step_;
  event.time = current_time_;
  event.end_time = current_time_;
  event.request_id = request_id;
  return event;
}

void ServingTrace::on_arrive(const Request& request) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kArrive, request.id);
  event.step = -1;  // queueing happens between steps
  event.time = request.arrival_time;
  event.end_time = request.arrival_time;
  event.tokens = request.prompt_len;
  event.prev_tokens = request.output_len;
  event.aux = request.tenant_id;
}

void ServingTrace::begin_step(std::int64_t step_index, Seconds start) {
  current_step_ = step_index;
  current_time_ = start;
  step_first_event_ = events_.size();
}

void ServingTrace::end_step(bool prefill, std::int64_t batch, Seconds end,
                            double latency_s,
                            std::int64_t kv_referenced_blocks,
                            std::int64_t blocks_allocated,
                            std::int64_t blocks_reclaimed) {
  if (!config_.enabled) return;
  // Chunk spans recorded mid-step learn their duration only now.
  for (std::size_t i = step_first_event_; i < events_.size(); ++i) {
    if (events_[i].type == TraceEventType::kPrefillChunk) {
      events_[i].end_time = end;
    }
  }
  TraceEvent& event = push(TraceEventType::kStep, -1);
  event.end_time = end;
  event.batch = batch;
  event.aux = prefill ? 0 : 1;
  event.value = latency_s;
  event.tokens = kv_referenced_blocks;
  event.blocks = blocks_allocated;
  event.blocks2 = blocks_reclaimed;
}

void ServingTrace::on_first_token(std::int64_t request_id, Seconds emit_time) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kFirstToken, request_id);
  event.time = emit_time;
  event.end_time = emit_time;
}

void ServingTrace::on_finish(std::int64_t request_id, Seconds completion,
                             std::int64_t generated_tokens) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kFinish, request_id);
  event.time = completion;
  event.end_time = completion;
  event.tokens = generated_tokens;
}

void ServingTrace::on_shed(std::int64_t request_id, Seconds horizon) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kShed, request_id);
  event.step = -1;
  event.time = horizon;
  event.end_time = horizon;
  event.aux = 1;  // horizon cut
}

void ServingTrace::on_shed(std::int64_t request_id) {
  if (!config_.enabled) return;
  // Deadline shed from the scheduler: stamped with the current step's
  // start time by push(); aux 0 distinguishes it from a horizon cut.
  TraceEvent& event = push(TraceEventType::kShed, request_id);
  event.aux = 0;
}

void ServingTrace::on_shed_fault(std::int64_t request_id, Seconds time) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kShed, request_id);
  event.step = -1;
  event.time = time;
  event.end_time = time;
  event.aux = 2;  // fault drop
}

void ServingTrace::on_fault(std::int64_t request_id, std::int64_t fault_kind,
                            Seconds time, std::int64_t lost_tokens,
                            Seconds duration) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kFault, request_id);
  event.step = -1;
  event.time = time;
  event.end_time = time;
  event.aux = fault_kind;
  event.tokens = lost_tokens;
  event.value = duration;
}

void ServingTrace::on_recover(std::int64_t request_id, std::int64_t mechanism,
                              Seconds time, Bytes bytes, std::int64_t attempt) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kRecover, request_id);
  event.step = -1;
  event.time = time;
  event.end_time = time;
  event.aux = mechanism;
  event.bytes = bytes;
  event.tokens = attempt;
}

void ServingTrace::on_degrade(bool entering, Seconds time) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kDegrade, -1);
  event.step = -1;
  event.time = time;
  event.end_time = time;
  event.aux = entering ? 1 : 0;
}

void ServingTrace::on_route(const Request& request, int replica,
                            Seconds time) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kRoute, request.id);
  event.step = -1;
  event.time = time;
  event.end_time = time;
  event.aux = replica;
  event.tokens = request.prompt_len;
  event.prev_tokens = request.tenant_id;
  event.blocks = request.prefix_id;
}

void ServingTrace::on_kv_transfer(std::int64_t request_id, int src_replica,
                                  int dst_replica, std::int64_t blocks,
                                  Bytes bytes, Seconds time,
                                  Seconds duration) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kKvTransfer, request_id);
  event.step = -1;
  event.time = time;
  event.end_time = time + duration;
  event.aux = dst_replica;
  event.prev_tokens = src_replica;
  event.blocks = blocks;
  event.bytes = bytes;
  event.value = duration;
}

void ServingTrace::on_admit(const Request& request,
                            std::int64_t lookup_tokens,
                            std::int64_t prefix_hit_tokens,
                            std::int64_t shared_blocks,
                            std::int64_t cow_blocks) {
  // Tenant tally is the sampler's input: maintained in every attached
  // mode, including sampling-without-tracing.
  tenant_admitted_tokens_[request.tenant_id] +=
      request.prompt_len + request.output_len;
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kAdmit, request.id);
  event.tokens = request.prompt_len;
  event.prev_tokens = prefix_hit_tokens;
  event.aux = request.tenant_id;
  if (lookup_tokens > 0) {
    TraceEvent& hit = push(TraceEventType::kPrefixHit, request.id);
    hit.tokens = lookup_tokens;
    hit.prev_tokens = prefix_hit_tokens;
    hit.blocks = shared_blocks;
    hit.blocks2 = cow_blocks;
  }
}

void ServingTrace::on_prefill_chunk(std::int64_t request_id, std::int64_t prev,
                                    std::int64_t chunk) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kPrefillChunk, request_id);
  event.prev_tokens = prev;
  event.tokens = chunk;
}

void ServingTrace::on_decode_enter(std::int64_t request_id,
                                   std::int64_t kv_bucket) {
  if (!config_.enabled) return;
  TraceEvent& event = push(TraceEventType::kDecodeEnter, request_id);
  event.tokens = kv_bucket;
}

void ServingTrace::on_preempt(std::int64_t request_id) {
  if (!config_.enabled) return;
  push(TraceEventType::kPreempt, request_id);
}

void ServingTrace::on_swap_out(std::int64_t request_id, Bytes bytes) {
  if (!config_.enabled) return;
  push(TraceEventType::kSwapOut, request_id).bytes = bytes;
}

void ServingTrace::on_swap_in(std::int64_t request_id, Bytes bytes) {
  if (!config_.enabled) return;
  push(TraceEventType::kSwapIn, request_id).bytes = bytes;
}

// --- Exporters ---------------------------------------------------------------

namespace {

/// Simulated seconds -> trace microseconds (the trace-event unit).
std::string trace_ts(Seconds time) { return json_double(time * 1e6); }

/// Appends one trace-event object, handling the comma placement.
class EventWriter {
 public:
  explicit EventWriter(std::ostringstream& out) : out_(out) {}

  std::ostringstream& next() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }

 private:
  std::ostringstream& out_;
  bool first_ = true;
};

void emit_instant(EventWriter& writer, const char* name, std::int64_t pid,
                  std::int64_t tid, Seconds time, const std::string& args) {
  writer.next() << "{\"name\":\"" << name
                << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
                << ",\"tid\":" << tid << ",\"ts\":" << trace_ts(time)
                << (args.empty() ? "" : ",\"args\":{" + args + "}") << "}";
}

void emit_span(EventWriter& writer, const std::string& name, std::int64_t pid,
               std::int64_t tid, Seconds start, Seconds end,
               const std::string& args) {
  writer.next() << "{\"name\":\"" << sim::json_escape(name)
                << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
                << ",\"ts\":" << trace_ts(start)
                << ",\"dur\":" << json_double((end - start) * 1e6)
                << (args.empty() ? "" : ",\"args\":{" + args + "}") << "}";
}

void emit_counter(EventWriter& writer, const char* name, std::int64_t pid,
                  Seconds time, const std::string& args) {
  writer.next() << "{\"name\":\"" << name << "\",\"ph\":\"C\",\"pid\":" << pid
                << ",\"ts\":" << trace_ts(time) << ",\"args\":{" << args
                << "}}";
}

constexpr std::int64_t kRequestPid = 1;
constexpr std::int64_t kEnginePid = 2;
constexpr std::int64_t kEngineTid = 1;

}  // namespace

std::string perfetto_trace_json(const std::vector<TraceEvent>& events,
                                const std::vector<TimeSample>& samples) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventWriter writer(out);

  // Track naming metadata: one process for request tracks, one for the
  // engine.  Request tids are the request ids themselves, sorted.
  writer.next() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
                << kRequestPid << ",\"args\":{\"name\":\"requests\"}}";
  writer.next() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
                << kEnginePid << ",\"args\":{\"name\":\"engine\"}}";
  std::map<std::int64_t, Seconds> queued_since;  // also collects ids
  for (const TraceEvent& event : events) {
    if (event.request_id >= 0) queued_since.emplace(event.request_id, -1);
  }
  for (const auto& [id, unused] : queued_since) {
    (void)unused;
    writer.next() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << kRequestPid << ",\"tid\":" << id
                  << ",\"args\":{\"name\":\"request " << id << "\"}}";
  }

  // One forward pass: queued spans open at arrive/preempt/swap-out and
  // close at the next admit/swap-in (or the shed point); decode spans
  // open at the first token and close at finish/shed.
  std::map<std::int64_t, Seconds> decoding_since;
  const auto close_queued = [&](std::int64_t id, Seconds end) {
    auto it = queued_since.find(id);
    if (it == queued_since.end() || it->second < 0) return;
    emit_span(writer, "queued", kRequestPid, id, it->second, end, "");
    it->second = -1;
  };
  const auto close_decoding = [&](std::int64_t id, Seconds end) {
    auto it = decoding_since.find(id);
    if (it == decoding_since.end() || it->second < 0) return;
    emit_span(writer, "decode", kRequestPid, id, it->second, end, "");
    it->second = -1;
  };
  for (const TraceEvent& event : events) {
    const std::int64_t id = event.request_id;
    std::ostringstream args;
    switch (event.type) {
      case TraceEventType::kArrive:
        queued_since[id] = event.time;
        args << "\"prompt_len\":" << event.tokens
             << ",\"output_len\":" << event.prev_tokens
             << ",\"tenant\":" << event.aux;
        emit_instant(writer, "arrive", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kAdmit:
        close_queued(id, event.time);
        args << "\"prompt_len\":" << event.tokens
             << ",\"prefix_hit_tokens\":" << event.prev_tokens
             << ",\"tenant\":" << event.aux;
        emit_instant(writer, "admit", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kPrefixHit:
        args << "\"lookup_tokens\":" << event.tokens
             << ",\"hit_tokens\":" << event.prev_tokens
             << ",\"shared_blocks\":" << event.blocks
             << ",\"cow_blocks\":" << event.blocks2;
        emit_instant(writer, "prefix_hit", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kPrefillChunk: {
        std::ostringstream name;
        name << "prefill [" << event.prev_tokens << ", "
             << event.prev_tokens + event.tokens << ")";
        args << "\"prev_tokens\":" << event.prev_tokens
             << ",\"chunk_tokens\":" << event.tokens
             << ",\"step\":" << event.step;
        emit_span(writer, name.str(), kRequestPid, id, event.time,
                  event.end_time, args.str());
        break;
      }
      case TraceEventType::kFirstToken:
        decoding_since[id] = event.time;
        emit_instant(writer, "first_token", kRequestPid, id, event.time, "");
        break;
      case TraceEventType::kDecodeEnter:
        args << "\"kv_bucket\":" << event.tokens;
        emit_instant(writer, "decode_enter", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kPreempt:
        close_decoding(id, event.time);
        queued_since[id] = event.time;
        emit_instant(writer, "preempt", kRequestPid, id, event.time, "");
        break;
      case TraceEventType::kSwapOut:
        close_decoding(id, event.time);
        queued_since[id] = event.time;
        args << "\"bytes\":" << json_double(event.bytes);
        emit_instant(writer, "swap_out", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kSwapIn:
        close_queued(id, event.time);
        args << "\"bytes\":" << json_double(event.bytes);
        emit_instant(writer, "swap_in", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kFinish:
        close_decoding(id, event.time);
        args << "\"generated_tokens\":" << event.tokens;
        emit_instant(writer, "finish", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kShed:
        close_queued(id, event.time);
        close_decoding(id, event.time);
        args << "\"cause\":\""
             << (event.aux == 0 ? "deadline"
                                : (event.aux == 1 ? "horizon" : "fault"))
             << '"';
        emit_instant(writer, "shed", kRequestPid, id, event.time, args.str());
        break;
      case TraceEventType::kFault:
        args << "\"kind\":\"" << fault_type_name(
                                     static_cast<FaultType>(event.aux))
             << "\",\"lost_tokens\":" << event.tokens
             << ",\"duration_s\":" << json_double(event.value);
        emit_instant(writer, "fault", id >= 0 ? kRequestPid : kEnginePid,
                     id >= 0 ? id : kEngineTid, event.time, args.str());
        break;
      case TraceEventType::kRecover:
        args << "\"mechanism\":\""
             << (event.aux == 0 ? "retry" : "host_restore")
             << "\",\"attempt\":" << event.tokens
             << ",\"bytes\":" << json_double(event.bytes);
        emit_instant(writer, "recover", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kDegrade:
        args << "\"mode\":\"" << (event.aux == 1 ? "enter" : "exit") << '"';
        emit_instant(writer, "degrade", kEnginePid, kEngineTid, event.time,
                     args.str());
        break;
      case TraceEventType::kRoute:
        args << "\"replica\":" << event.aux
             << ",\"prompt_len\":" << event.tokens
             << ",\"tenant\":" << event.prev_tokens
             << ",\"prefix_id\":" << event.blocks;
        emit_instant(writer, "route", kRequestPid, id, event.time,
                     args.str());
        break;
      case TraceEventType::kKvTransfer:
        args << "\"src_replica\":" << event.prev_tokens
             << ",\"dst_replica\":" << event.aux
             << ",\"blocks\":" << event.blocks
             << ",\"bytes\":" << json_double(event.bytes)
             << ",\"transfer_s\":" << json_double(event.value);
        emit_span(writer, "kv_transfer", kRequestPid, id, event.time,
                  event.end_time, args.str());
        break;
      case TraceEventType::kStep: {
        std::ostringstream name;
        name << (event.aux == 0 ? "prefill" : "decode")
             << " b=" << event.batch;
        args << "\"step\":" << event.step << ",\"batch\":" << event.batch
             << ",\"latency_s\":" << json_double(event.value)
             << ",\"kv_referenced_blocks\":" << event.tokens
             << ",\"kv_blocks_allocated\":" << event.blocks
             << ",\"kv_blocks_reclaimed\":" << event.blocks2;
        emit_span(writer, name.str(), kEnginePid, kEngineTid, event.time,
                  event.end_time, args.str());
        break;
      }
    }
  }

  // Counter tracks from the time-series samples.
  for (const TimeSample& sample : samples) {
    std::ostringstream args;
    args << "\"value\":" << sample.queue_depth;
    emit_counter(writer, "queue_depth", kEnginePid, sample.time, args.str());
    args.str("");
    args << "\"resident\":" << sample.resident_sequences
         << ",\"decoding\":" << sample.resident_decoders
         << ",\"swapped\":" << sample.swapped_sequences;
    emit_counter(writer, "sequences", kEnginePid, sample.time, args.str());
    args.str("");
    args << "\"referenced\":" << sample.kv_referenced_blocks
         << ",\"cached\":"
         << sample.kv_occupied_blocks - sample.kv_referenced_blocks;
    emit_counter(writer, "kv_blocks", kEnginePid, sample.time, args.str());
    args.str("");
    args << "\"value\":" << json_double(sample.kv_internal_fragmentation);
    emit_counter(writer, "kv_fragmentation", kEnginePid, sample.time,
                 args.str());
    args.str("");
    args << "\"value\":" << json_double(sample.prefix_hit_rate);
    emit_counter(writer, "prefix_hit_rate", kEnginePid, sample.time,
                 args.str());
    if (!sample.tenant_admitted_tokens.empty()) {
      args.str("");
      bool first = true;
      for (const auto& [tenant, tokens] : sample.tenant_admitted_tokens) {
        if (!first) args << ',';
        first = false;
        args << "\"tenant " << tenant << "\":" << tokens;
      }
      emit_counter(writer, "tenant_admitted_tokens", kEnginePid, sample.time,
                   args.str());
    }
  }

  // No trailing newline: sim::write_json_file appends exactly one.
  out << "\n]}";
  return out.str();
}

std::string trace_jsonl(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << '\n';
    first = false;
    out << "{\"type\":\"" << trace_event_type_name(event.type) << '"';
    if (event.step >= 0) out << ",\"step\":" << event.step;
    out << ",\"time\":" << json_double(event.time);
    if (event.end_time != event.time) {
      out << ",\"end_time\":" << json_double(event.end_time);
    }
    if (event.request_id >= 0) out << ",\"request\":" << event.request_id;
    switch (event.type) {
      case TraceEventType::kArrive:
        out << ",\"prompt_len\":" << event.tokens
            << ",\"output_len\":" << event.prev_tokens
            << ",\"tenant\":" << event.aux;
        break;
      case TraceEventType::kAdmit:
        out << ",\"prompt_len\":" << event.tokens
            << ",\"prefix_hit_tokens\":" << event.prev_tokens
            << ",\"tenant\":" << event.aux;
        break;
      case TraceEventType::kPrefixHit:
        out << ",\"lookup_tokens\":" << event.tokens
            << ",\"hit_tokens\":" << event.prev_tokens
            << ",\"shared_blocks\":" << event.blocks
            << ",\"cow_blocks\":" << event.blocks2;
        break;
      case TraceEventType::kPrefillChunk:
        out << ",\"prev_tokens\":" << event.prev_tokens
            << ",\"chunk_tokens\":" << event.tokens;
        break;
      case TraceEventType::kDecodeEnter:
        out << ",\"kv_bucket\":" << event.tokens;
        break;
      case TraceEventType::kSwapOut:
      case TraceEventType::kSwapIn:
        out << ",\"bytes\":" << json_double(event.bytes);
        break;
      case TraceEventType::kFinish:
        out << ",\"generated_tokens\":" << event.tokens;
        break;
      case TraceEventType::kStep:
        out << ",\"kind\":\"" << (event.aux == 0 ? "prefill" : "decode")
            << "\",\"batch\":" << event.batch
            << ",\"latency_s\":" << json_double(event.value)
            << ",\"kv_referenced_blocks\":" << event.tokens
            << ",\"kv_blocks_allocated\":" << event.blocks
            << ",\"kv_blocks_reclaimed\":" << event.blocks2;
        break;
      case TraceEventType::kShed:
        out << ",\"cause\":\""
            << (event.aux == 0 ? "deadline"
                               : (event.aux == 1 ? "horizon" : "fault"))
            << '"';
        break;
      case TraceEventType::kFault:
        out << ",\"kind\":\""
            << fault_type_name(static_cast<FaultType>(event.aux))
            << "\",\"lost_tokens\":" << event.tokens
            << ",\"duration_s\":" << json_double(event.value);
        break;
      case TraceEventType::kRecover:
        out << ",\"mechanism\":\""
            << (event.aux == 0 ? "retry" : "host_restore")
            << "\",\"attempt\":" << event.tokens
            << ",\"bytes\":" << json_double(event.bytes);
        break;
      case TraceEventType::kDegrade:
        out << ",\"mode\":\"" << (event.aux == 1 ? "enter" : "exit") << '"';
        break;
      case TraceEventType::kRoute:
        out << ",\"replica\":" << event.aux
            << ",\"prompt_len\":" << event.tokens
            << ",\"tenant\":" << event.prev_tokens
            << ",\"prefix_id\":" << event.blocks;
        break;
      case TraceEventType::kKvTransfer:
        out << ",\"src_replica\":" << event.prev_tokens
            << ",\"dst_replica\":" << event.aux
            << ",\"blocks\":" << event.blocks
            << ",\"bytes\":" << json_double(event.bytes)
            << ",\"transfer_s\":" << json_double(event.value);
        break;
      case TraceEventType::kFirstToken:
      case TraceEventType::kPreempt:
        break;
    }
    out << '}';
  }
  return out.str();
}

std::vector<RequestTimeline> trace_request_timelines(
    const std::vector<TraceEvent>& events) {
  std::map<std::int64_t, RequestTimeline> timelines;
  for (const TraceEvent& event : events) {
    if (event.request_id < 0) continue;
    RequestTimeline& timeline = timelines[event.request_id];
    timeline.request_id = event.request_id;
    switch (event.type) {
      case TraceEventType::kArrive:
        if (timeline.arrival < 0) timeline.arrival = event.time;
        break;
      case TraceEventType::kAdmit:
        if (timeline.first_admit < 0) timeline.first_admit = event.time;
        break;
      case TraceEventType::kPrefillChunk:
        timeline.prefill_chunks += 1;
        break;
      case TraceEventType::kFirstToken:
        if (timeline.first_token < 0) timeline.first_token = event.time;
        break;
      case TraceEventType::kPreempt:
      case TraceEventType::kSwapOut:
        timeline.preemptions += 1;
        break;
      case TraceEventType::kFinish:
        timeline.completion = event.time;
        timeline.generated_tokens = event.tokens;
        break;
      case TraceEventType::kShed:
        timeline.shed = true;
        break;
      default:
        break;
    }
  }
  std::vector<RequestTimeline> result;
  result.reserve(timelines.size());
  for (auto& [id, timeline] : timelines) {
    (void)id;
    result.push_back(std::move(timeline));
  }
  return result;
}

namespace {

/// mkdir -p: creates `path` and its ancestors (0755); existing
/// directories are fine, other failures surface at file-write time.
void make_directories(const std::string& path) {
  std::string partial;
  partial.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      partial.push_back(path[i]);
      continue;
    }
    if (!partial.empty()) ::mkdir(partial.c_str(), 0755);
    if (i < path.size()) partial.push_back('/');
  }
}

}  // namespace

std::vector<std::string> write_trace_files(
    const ServingTrace& trace, const std::vector<TimeSample>& samples) {
  const TraceConfig& config = trace.config();
  std::vector<std::string> paths;
  if (!config.enabled || config.dir.empty()) return paths;
  make_directories(config.dir);
  const std::string base = config.dir + "/" + config.label;
  if (config.write_perfetto) {
    const std::string path = base + ".trace.json";
    sim::write_json_file(path, perfetto_trace_json(trace.events(), samples));
    paths.push_back(path);
  }
  if (config.write_jsonl) {
    const std::string path = base + ".jsonl";
    sim::write_json_file(path, trace_jsonl(trace.events()));
    paths.push_back(path);
  }
  return paths;
}

std::string sanitize_trace_label(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  bool pending_separator = false;
  for (char c : label) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (safe) {
      if (pending_separator && !out.empty()) out.push_back('_');
      pending_separator = false;
      out.push_back(c);
    } else {
      pending_separator = true;
    }
  }
  return out;
}

}  // namespace cimtpu::serving
