#pragma once
// Memoized per-layer step costs for the serving simulator.
//
// The continuous-batching engine costs millions of steps per run, but the
// distinct (prefill/decode, batch, bucketed-seqlen) shapes number in the
// hundreds — so every shape is simulated once and memoized.  Two layers:
//
//   * StepCostCache — the per-run cache on the hot path.  Lookups hit an
//     open-addressed flat table (no node allocations, no pointer chasing)
//     keyed by the packed u64 shape key.  Hit/miss counters are LOCAL:
//     they depend only on the run's own lookup sequence, never on what a
//     shared store already holds, so metrics stay bit-identical whether or
//     not a shared store is attached and however sweep threads interleave.
//   * SharedStepCostCache — an optional cross-run store for sweeps.  Runs
//     with the same (chip config, model, bucket) signature share computed
//     costs, so a sweep's points stop re-simulating identical
//     run_prefill_layer / run_decode_layer shapes.  Thread-safe; a racing
//     duplicate compute is allowed (the simulator is deterministic, so
//     both threads write the same value) rather than holding the lock
//     across a simulation.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/tpu_config.h"
#include "common/math_util.h"
#include "common/units.h"
#include "models/transformer.h"
#include "sim/workload_runner.h"

namespace cimtpu::serving {

class MetricsRegistry;

/// Per-layer cost of one engine step shape.
struct StepCost {
  Seconds latency = 0;
  Seconds mxu_busy_time = 0;
  Joules mxu_energy = 0;
  Joules total_energy = 0;
};

/// Open-addressed hash table from packed shape key to StepCost: one flat
/// slot array, linear probing, Fibonacci hashing.  Key 0 is the empty
/// sentinel (packed keys always carry batch >= 1 in the high bits, so 0
/// never collides with a real shape).
class FlatCostTable {
 public:
  FlatCostTable();

  /// Returns the cost for `key`, or nullptr when absent.
  const StepCost* find(std::uint64_t key) const;

  /// Inserts `key` (must not be present or 0); grows at ~70% load.
  void insert(std::uint64_t key, const StepCost& cost);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key = 0;  ///< 0 = empty
    StepCost cost;
  };

  std::size_t slot_index(std::uint64_t key) const;
  void grow();

  std::vector<Slot> slots_;  ///< power-of-two capacity
  int shift_ = 0;            ///< 64 - log2(capacity): home slot = high bits
  std::size_t size_ = 0;
};

/// Cross-run cost store for sweeps: one mutex-protected FlatCostTable per
/// (chip config, model, bucket) signature, created on demand.
class SharedStepCostCache {
 public:
  class Store {
   public:
    bool try_get(std::uint64_t key, StepCost* out) const;
    void put(std::uint64_t key, const StepCost& cost);
    std::size_t size() const;

   private:
    mutable std::mutex mu_;
    FlatCostTable table_;
  };

  /// The store for `signature` (see cost_cache_signature); created on
  /// first use and stable for the cache's lifetime.
  Store* store(const std::string& signature);

  std::size_t store_count() const;
  std::size_t total_entries() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Store>> stores_;
};

/// Signature under which runs may share computed step costs: every field
/// that feeds run_prefill_layer / run_decode_layer results.  Chip count,
/// eviction policy, and traffic do NOT affect per-layer shape costs, so a
/// whole arrival-rate x chips x policy sweep typically shares one store.
std::string cost_cache_signature(const arch::TpuChipConfig& chip,
                                 const models::TransformerConfig& model,
                                 std::int64_t bucket);

/// Memoizes per-layer prefill/decode costs keyed on (batch, seqlen bucket).
/// Sequence lengths are rounded UP to `bucket` tokens — conservative, and
/// it bounds the number of distinct shapes the simulator ever costs.
class StepCostCache {
 public:
  StepCostCache(const sim::Simulator& simulator,
                const models::TransformerConfig& model,
                std::int64_t bucket = 128,
                SharedStepCostCache::Store* shared = nullptr);

  /// One prefill layer over `batch` prompts of (bucketed) length `seq_len`.
  /// Chunked prefill costs chunks as differences of these shapes —
  /// prefill(prev + chunk) - prefill(prev) — which also covers chunks that
  /// BEGIN at a nonzero KV offset (prev > 0 on a sequence's first chunk):
  /// a paged-KV prefix hit skips the cached leading tokens, so its first
  /// chunk attends over the reused prefix exactly like a later chunk
  /// attends over earlier chunks.
  StepCost prefill_layer(std::int64_t batch, std::int64_t seq_len);

  /// One decode layer over `batch` sequences at (bucketed) KV length
  /// `kv_len`.
  StepCost decode_layer(std::int64_t batch, std::int64_t kv_len);

  std::int64_t bucket_up(std::int64_t len) const {
    return round_up(len, bucket_);
  }

  /// Packs a shape into the cache key: kind bit 63, batch bits 40..62,
  /// len bits 0..39.  Checked against the field widths so distinct shapes
  /// can never alias.
  static std::uint64_t pack_key(bool prefill, std::int64_t batch,
                                std::int64_t len);

  std::size_t size() const { return local_.size(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  /// Load factor of the local flat table (size / slot capacity), in
  /// [0, ~0.7) — the probe-length health gauge the bench JSON reports.
  double occupancy() const {
    return local_.capacity() == 0
               ? 0.0
               : static_cast<double>(local_.size()) /
                     static_cast<double>(local_.capacity());
  }

  /// Publishes entries/hits/misses/occupancy into `registry` under
  /// "cost_cache.*" names (serving/obs_registry.h).
  void publish(MetricsRegistry* registry) const;

  /// Reusable scratch for cost_step's decode grouping (per-run, never
  /// shared across threads).
  std::vector<std::int64_t>& decode_group_scratch() { return scratch_; }

  /// Reusable scratch for cost_step's batched-prefill (prev, chunk) shape
  /// grouping — the last per-step container that still allocated on the
  /// hot path (per-run, never shared across threads).
  std::vector<std::pair<std::int64_t, std::int64_t>>& prefill_shape_scratch() {
    return shape_scratch_;
  }

  /// Memo of the last decode-step grouping and its summed cost: steady
  /// decode runs repeat the same (bucket, count) grouping for hundreds of
  /// consecutive steps (buckets only move at boundary crossings, the batch
  /// only at admit/finish/preempt), so cost_step skips the whole per-group
  /// lookup loop on a match.  Pure memoization of a deterministic sum, so
  /// results are bit-identical; skipped lookups are not counted in
  /// hits/misses, but deterministically so (the memo depends only on the
  /// step sequence, never on threading or cache sharing).
  bool last_decode_groups_match(
      const std::vector<std::pair<std::int64_t, std::int64_t>>& groups) const {
    return last_groups_valid_ && groups == last_groups_;
  }
  const StepCost& last_decode_groups_cost() const { return last_groups_cost_; }
  std::int64_t last_decode_groups_batch() const { return last_groups_batch_; }
  void remember_decode_groups(
      const std::vector<std::pair<std::int64_t, std::int64_t>>& groups,
      std::int64_t batch, const StepCost& cost) {
    last_groups_ = groups;
    last_groups_batch_ = batch;
    last_groups_cost_ = cost;
    last_groups_valid_ = true;
  }

 private:
  StepCost lookup(bool prefill, std::int64_t batch, std::int64_t len);

  const sim::Simulator* simulator_;
  models::TransformerConfig model_;
  std::int64_t bucket_;
  FlatCostTable local_;
  SharedStepCostCache::Store* shared_;  ///< may be null (per-run cache only)
  std::vector<std::int64_t> scratch_;
  std::vector<std::pair<std::int64_t, std::int64_t>> shape_scratch_;
  std::vector<std::pair<std::int64_t, std::int64_t>> last_groups_;
  StepCost last_groups_cost_;
  std::int64_t last_groups_batch_ = 0;
  bool last_groups_valid_ = false;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace cimtpu::serving
