#include "serving/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace cimtpu::serving {

namespace {

/// Percentile of an already-sorted, non-empty sample.
double percentile_sorted(const std::vector<double>& sorted, double p) {
  CIMTPU_CONFIG_CHECK(p >= 0.0 && p <= 100.0,
                      "percentile " << p << " outside [0, 100]");
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double percentile(std::vector<double> values, double p) {
  CIMTPU_CONFIG_CHECK(p >= 0.0 && p <= 100.0,
                      "percentile " << p << " outside [0, 100]");
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

std::int64_t ServingCounters::total_preemptions() const {
  return preemptions_recompute + preemptions_swap;
}

Bytes ServingCounters::total_swap_bytes() const {
  return swap_out_bytes + swap_in_bytes;
}

double ServingCounters::prefix_hit_rate() const {
  return prefix_lookup_tokens == 0
             ? 0.0
             : static_cast<double>(prefix_hit_tokens) /
                   static_cast<double>(prefix_lookup_tokens);
}

double jain_fairness_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0;
  double sum_squares = 0;
  for (double value : values) {
    CIMTPU_CONFIG_CHECK(value >= 0,
                        "fairness allocations must be >= 0, got " << value);
    sum += value;
    sum_squares += value * value;
  }
  if (sum_squares == 0) return 1.0;  // everyone equally got nothing
  return sum * sum / (static_cast<double>(values.size()) * sum_squares);
}

LatencySummary summarize_latencies(const std::vector<double>& values) {
  LatencySummary summary;
  summary.count = static_cast<std::int64_t>(values.size());
  if (values.empty()) return summary;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double v : sorted) sum += v;
  summary.mean = sum / static_cast<double>(sorted.size());
  summary.p50 = percentile_sorted(sorted, 50.0);
  summary.p95 = percentile_sorted(sorted, 95.0);
  summary.p99 = percentile_sorted(sorted, 99.0);
  summary.max = sorted.back();
  return summary;
}

}  // namespace cimtpu::serving
