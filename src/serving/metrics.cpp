#include "serving/metrics.h"

#include <algorithm>

#include "common/status.h"
#include "serving/obs_registry.h"

namespace cimtpu::serving {

std::int64_t ServingCounters::total_preemptions() const {
  return preemptions_recompute + preemptions_swap;
}

Bytes ServingCounters::total_swap_bytes() const {
  return swap_out_bytes + swap_in_bytes;
}

std::int64_t ServingCounters::total_shed() const {
  return shed_deadline + shed_horizon + shed_fault;
}

double ServingCounters::prefix_hit_rate() const {
  return prefix_lookup_tokens == 0
             ? 0.0
             : static_cast<double>(prefix_hit_tokens) /
                   static_cast<double>(prefix_lookup_tokens);
}

void ServingCounters::publish(MetricsRegistry* registry) const {
  CIMTPU_CHECK(registry != nullptr);
  registry->set_counter("scheduler.preemptions_recompute",
                        preemptions_recompute);
  registry->set_counter("scheduler.preemptions_swap", preemptions_swap);
  registry->set_counter("scheduler.swap_ins", swap_ins);
  registry->set_gauge("scheduler.swap_out_bytes", swap_out_bytes);
  registry->set_gauge("scheduler.swap_in_bytes", swap_in_bytes);
  registry->set_counter("scheduler.chunked_prefill_steps",
                        chunked_prefill_steps);
  registry->set_counter("scheduler.prefix_lookup_tokens",
                        prefix_lookup_tokens);
  registry->set_counter("scheduler.prefix_hit_tokens", prefix_hit_tokens);
  registry->set_counter("scheduler.prefix_shared_blocks",
                        prefix_shared_blocks);
  registry->set_counter("scheduler.prefix_cow_blocks", prefix_cow_blocks);
  registry->set_gauge("scheduler.prefix_hit_rate", prefix_hit_rate());
  registry->set_counter("scheduler.shed_deadline", shed_deadline);
  registry->set_counter("scheduler.shed_horizon", shed_horizon);
  registry->set_counter("scheduler.shed_fault", shed_fault);
}

double jain_fairness_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0;
  double sum_squares = 0;
  for (double value : values) {
    CIMTPU_CONFIG_CHECK(value >= 0,
                        "fairness allocations must be >= 0, got " << value);
    sum += value;
    sum_squares += value * value;
  }
  if (sum_squares == 0) return 1.0;  // everyone equally got nothing
  return sum * sum / (static_cast<double>(values.size()) * sum_squares);
}

LatencySummary summarize_latencies(const std::vector<double>& values) {
  LatencySummary summary;
  summary.count = static_cast<std::int64_t>(values.size());
  if (values.empty()) return summary;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double v : sorted) sum += v;
  summary.mean = sum / static_cast<double>(sorted.size());
  summary.p50 = percentile_sorted(sorted, 50.0);
  summary.p95 = percentile_sorted(sorted, 95.0);
  summary.p99 = percentile_sorted(sorted, 99.0);
  summary.max = sorted.back();
  return summary;
}

}  // namespace cimtpu::serving
