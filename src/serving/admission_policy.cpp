#include "serving/admission_policy.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/status.h"
#include "serving/obs_registry.h"

namespace cimtpu::serving {

void TenantShare::validate() const {
  CIMTPU_CONFIG_CHECK(tenant_id >= -1,
                      "tenant_id must be >= 0 or -1 (bind to index), got "
                          << tenant_id);
  CIMTPU_CONFIG_CHECK(weight > 0, "tenant weight must be positive, got "
                                      << weight);
  CIMTPU_CONFIG_CHECK(token_rate_cap >= 0,
                      "token_rate_cap must be >= 0, got " << token_rate_cap);
  CIMTPU_CONFIG_CHECK(burst_tokens >= 0,
                      "burst_tokens must be >= 0, got " << burst_tokens);
}

namespace {

/// The Request::tenant_id a share entry applies to: explicit when set,
/// else the entry's own index (the historical positional convention).
std::int64_t resolved_tenant_id(const TenantShare& share, std::size_t index) {
  return share.tenant_id >= 0 ? share.tenant_id
                              : static_cast<std::int64_t>(index);
}

}  // namespace

TenantShare resolve_tenant_share(const std::vector<TenantShare>& tenants,
                                 std::int64_t tenant_id) {
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (resolved_tenant_id(tenants[i], i) == tenant_id) return tenants[i];
  }
  return TenantShare{};  // weight 1, uncapped
}

TenantShare AdmissionConfig::share_for(std::int64_t tenant_id) const {
  return resolve_tenant_share(tenants, tenant_id);
}

void AdmissionConfig::validate() const {
  CIMTPU_CONFIG_CHECK(!policy.empty(), "admission policy name is empty");
  CIMTPU_CONFIG_CHECK(aging_rate >= 0,
                      "aging_rate must be >= 0, got " << aging_rate);
  CIMTPU_CONFIG_CHECK(edf_shed_slack_s >= 0,
                      "edf_shed_slack_s must be >= 0, got "
                          << edf_shed_slack_s);
  CIMTPU_CONFIG_CHECK(edf_degraded_extra_slack_s >= 0,
                      "edf_degraded_extra_slack_s must be >= 0, got "
                          << edf_degraded_extra_slack_s);
  for (const TenantShare& share : tenants) share.validate();
  // Two entries naming the same tenant would make weight resolution
  // order-dependent; reject loudly rather than silently preferring one.
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    for (std::size_t j = i + 1; j < tenants.size(); ++j) {
      CIMTPU_CONFIG_CHECK(
          resolved_tenant_id(tenants[i], i) !=
              resolved_tenant_id(tenants[j], j),
          "tenant share entries " << i << " and " << j
                                  << " both resolve to tenant_id "
                                  << resolved_tenant_id(tenants[i], i));
    }
  }
}

void AdmissionPolicy::on_finish(const Request& request, std::int64_t step) {
  (void)request;
  (void)step;
}

void AdmissionPolicy::publish(MetricsRegistry* registry) const {
  (void)registry;  // nothing policy-specific by default
}

void AdmissionPolicy::drain_shed(std::vector<Request>* out) {
  (void)out;  // non-shedding policies drop nothing
}

void AdmissionPolicy::set_degraded(bool degraded) {
  (void)degraded;  // most policies admit the same way either mode
}

// --- FifoAdmission -----------------------------------------------------------

void FifoAdmission::on_enqueue(const Request& request, std::int64_t step) {
  (void)step;
  waiting_.push_back(request);
}

void FifoAdmission::on_preempt_requeue(const Request& request,
                                       std::int64_t step) {
  (void)step;
  waiting_.push_front(request);  // retains FIFO priority
}

const Request* FifoAdmission::select(const AdmissionContext& context) {
  (void)context;
  return waiting_.empty() ? nullptr : &waiting_.front();
}

void FifoAdmission::pop_selected() {
  CIMTPU_CHECK(!waiting_.empty());
  waiting_.pop_front();
}

// --- PriorityAdmission -------------------------------------------------------

void PriorityAdmission::on_enqueue(const Request& request, std::int64_t step) {
  waiting_.push_back(Waiting{request, step, next_seq_++});
}

void PriorityAdmission::on_preempt_requeue(const Request& request,
                                           std::int64_t step) {
  // A recompute victim competes by priority again; its age restarts from
  // the preemption step (it held residency in between, so the original
  // enqueue step no longer measures time spent starved).
  waiting_.push_back(Waiting{request, step, next_seq_++});
}

const Request* PriorityAdmission::select(const AdmissionContext& context) {
  // One linear scan per admission attempt: per engine step that is
  // O(waiting x max_prefill_batch), with max_prefill_batch small (8 by
  // default) and off the default-"fifo" hot path.  A per-step cached
  // ranking would shave the factor but complicates the erase-on-pop
  // bookkeeping; revisit if a priority-admission overload study ever
  // dominates a profile.
  if (waiting_.empty()) return nullptr;
  double best_effective = -std::numeric_limits<double>::infinity();
  std::int64_t best_seq = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    const Waiting& waiting = waiting_[i];
    const double age =
        static_cast<double>(context.step - waiting.enqueue_step);
    const double effective =
        static_cast<double>(waiting.request.priority) + aging_rate_ * age;
    // Strictly-better effective priority wins; among equals the earliest
    // enqueue (lowest seq) wins, so equal-priority traffic stays FIFO.
    if (effective > best_effective ||
        (effective == best_effective && waiting.seq < best_seq)) {
      best_effective = effective;
      best_seq = waiting.seq;
      selected_ = i;
    }
  }
  return &waiting_[selected_].request;
}

void PriorityAdmission::pop_selected() {
  CIMTPU_CHECK(selected_ < waiting_.size());
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(selected_));
}

// --- WeightedFairAdmission ---------------------------------------------------

TenantShare WeightedFairAdmission::share(std::int64_t tenant_id) const {
  return resolve_tenant_share(shares_, tenant_id);
}

void WeightedFairAdmission::clamp_to_virtual_time(TenantState& state) {
  // Only a tenant with NOTHING in the system (no queue, no in-flight
  // work) re-enters at the virtual time; a tenant with resident work is
  // live and keeps its true virtual-work account.
  if (state.queue.empty() && state.in_flight == 0) {
    state.virtual_work = std::max(state.virtual_work, virtual_time_);
  }
}

void WeightedFairAdmission::on_enqueue(const Request& request,
                                       std::int64_t step) {
  (void)step;
  TenantState& state = tenant_states_[request.tenant_id];
  clamp_to_virtual_time(state);
  state.queue.push_back(request);
  ++waiting_total_;
}

void WeightedFairAdmission::on_preempt_requeue(const Request& request,
                                               std::int64_t step) {
  (void)step;
  TenantState& state = tenant_states_[request.tenant_id];
  // NO clamp_to_virtual_time here: the tenant had RESIDENT work (tracked
  // by in_flight), so it was never idle — its virtual work is live, and
  // clamping it up to the virtual time before the refund would swallow
  // the refund entirely and cost the tenant its share for the run.
  // Front of the tenant's own FIFO: seniority within the tenant survives
  // preemption, exactly like the FIFO baseline's push_front.  Refund the
  // admission charge — re-admission recharges it, so recompute churn does
  // not double-count against the tenant's share or rate cap.
  const double tokens = admission_tokens(request);
  const double weight = share(request.tenant_id).weight;
  if (state.in_flight > 0) --state.in_flight;
  state.admitted_tokens = std::max(0.0, state.admitted_tokens - tokens);
  state.virtual_work = std::max(0.0, state.virtual_work - tokens / weight);
  state.queue.push_front(request);
  ++waiting_total_;
}

void WeightedFairAdmission::on_finish(const Request& request,
                                      std::int64_t step) {
  (void)step;
  const auto it = tenant_states_.find(request.tenant_id);
  if (it != tenant_states_.end() && it->second.in_flight > 0) {
    --it->second.in_flight;
  }
}

void WeightedFairAdmission::publish(MetricsRegistry* registry) const {
  CIMTPU_CHECK(registry != nullptr);
  registry->set_counter("admission.waiting",
                        static_cast<std::int64_t>(waiting_total_));
  for (const auto& [tenant_id, state] : tenant_states_) {
    std::ostringstream prefix;
    prefix << "admission.tenant" << tenant_id;
    registry->set_gauge(prefix.str() + ".admitted_tokens",
                        state.admitted_tokens);
    registry->set_gauge(prefix.str() + ".virtual_work", state.virtual_work);
  }
}

const Request* WeightedFairAdmission::select(const AdmissionContext& context) {
  selected_tenant_ = nullptr;
  TenantState* fallback = nullptr;  // least virtual work ignoring caps
  double best_work = std::numeric_limits<double>::infinity();
  double fallback_work = std::numeric_limits<double>::infinity();
  for (auto& [tenant_id, state] : tenant_states_) {  // ascending tenant id
    if (state.queue.empty()) continue;
    if (state.virtual_work < fallback_work) {
      fallback_work = state.virtual_work;
      fallback = &state;
    }
    const TenantShare tenant_share = share(tenant_id);
    if (tenant_share.token_rate_cap > 0) {
      const double allowance = tenant_share.burst_tokens +
                               tenant_share.token_rate_cap * context.now;
      if (state.admitted_tokens + admission_tokens(state.queue.front()) >
          allowance) {
        continue;  // over its rate cap: skip (other tenants may admit)
      }
    }
    if (state.virtual_work < best_work) {
      best_work = state.virtual_work;
      selected_tenant_ = &state;
    }
  }
  // Liveness: with nothing resident the clock cannot advance to refill a
  // cap, so an all-throttled empty device admits the fairest candidate
  // anyway rather than deadlocking the engine.
  if (selected_tenant_ == nullptr && context.device_empty) {
    selected_tenant_ = fallback;
  }
  return selected_tenant_ == nullptr ? nullptr
                                     : &selected_tenant_->queue.front();
}

void WeightedFairAdmission::pop_selected() {
  CIMTPU_CHECK(selected_tenant_ != nullptr &&
               !selected_tenant_->queue.empty());
  const Request& request = selected_tenant_->queue.front();
  const double tokens = admission_tokens(request);
  const double weight = share(request.tenant_id).weight;
  // Virtual time advances to the admitted tenant's pre-charge work: a
  // tenant that goes idle and returns re-enters at this level instead of
  // replaying its banked past.
  virtual_time_ = std::max(virtual_time_, selected_tenant_->virtual_work);
  selected_tenant_->admitted_tokens += tokens;
  selected_tenant_->virtual_work += tokens / weight;
  ++selected_tenant_->in_flight;
  selected_tenant_->queue.pop_front();
  --waiting_total_;
  selected_tenant_ = nullptr;
}

// --- EdfAdmission ------------------------------------------------------------

double EdfAdmission::absolute_deadline(const Request& request) {
  return request.ttft_deadline > 0
             ? request.arrival_time + request.ttft_deadline
             : std::numeric_limits<double>::infinity();
}

void EdfAdmission::on_enqueue(const Request& request, std::int64_t step) {
  (void)step;
  waiting_.push_back(Waiting{request, next_seq_++, /*resumed=*/false});
}

void EdfAdmission::on_preempt_requeue(const Request& request,
                                      std::int64_t step) {
  (void)step;
  // A recompute victim keeps competing by its (settled) deadline but is
  // exempt from shedding: its first token already streamed, so dropping
  // it now would discard finished decode progress for no SLO gain.
  waiting_.push_back(Waiting{request, next_seq_++, /*resumed=*/true});
}

const Request* EdfAdmission::select(const AdmissionContext& context) {
  // Shed pass first: drop every fresh request whose TTFT deadline is
  // provably unreachable (now + slack past it) so the EDF scan below only
  // ranks requests that can still be served in time.  swap-and-pop keeps
  // the pass linear; ordering does not matter because selection re-scans.
  for (std::size_t i = 0; i < waiting_.size();) {
    const Waiting& waiting = waiting_[i];
    const double deadline = absolute_deadline(waiting.request);
    if (!waiting.resumed && context.now + effective_slack() > deadline) {
      shed_.push_back(waiting.request);
      waiting_[i] = waiting_.back();
      waiting_.pop_back();
    } else {
      ++i;
    }
  }
  if (waiting_.empty()) return nullptr;
  double best_deadline = std::numeric_limits<double>::infinity();
  std::int64_t best_seq = std::numeric_limits<std::int64_t>::max();
  bool found = false;
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    const double deadline = absolute_deadline(waiting_[i].request);
    const std::int64_t seq = waiting_[i].seq;
    // Earliest absolute deadline wins; among equals (including the +inf
    // deadline-free tail) the earliest enqueue wins, so deadline-free
    // traffic stays FIFO.
    if (!found || deadline < best_deadline ||
        (deadline == best_deadline && seq < best_seq)) {
      best_deadline = deadline;
      best_seq = seq;
      selected_ = i;
      found = true;
    }
  }
  return &waiting_[selected_].request;
}

void EdfAdmission::pop_selected() {
  CIMTPU_CHECK(selected_ < waiting_.size());
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(selected_));
}

void EdfAdmission::drain_shed(std::vector<Request>* out) {
  CIMTPU_CHECK(out != nullptr);
  out->insert(out->end(), shed_.begin(), shed_.end());
  shed_.clear();
}

// --- Registry ----------------------------------------------------------------

namespace {

std::map<std::string, AdmissionPolicyFactory>& registry() {
  static std::map<std::string, AdmissionPolicyFactory> policies = {
      {"fifo",
       [](const AdmissionConfig&) {
         return std::make_unique<FifoAdmission>();
       }},
      {"priority",
       [](const AdmissionConfig& config) {
         return std::make_unique<PriorityAdmission>(config.aging_rate);
       }},
      {"wfq",
       [](const AdmissionConfig& config) {
         return std::make_unique<WeightedFairAdmission>(config.tenants);
       }},
      {"edf",
       [](const AdmissionConfig& config) {
         return std::make_unique<EdfAdmission>(
             config.edf_shed_slack_s, config.edf_degraded_extra_slack_s);
       }},
  };
  return policies;
}

}  // namespace

void register_admission_policy(const std::string& name,
                               AdmissionPolicyFactory factory) {
  registry()[name] = std::move(factory);
}

std::vector<std::string> admission_policy_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const AdmissionConfig& config) {
  config.validate();
  const auto it = registry().find(config.policy);
  if (it == registry().end()) {
    std::ostringstream known;
    for (const std::string& name : admission_policy_names()) {
      known << ' ' << name;
    }
    CIMTPU_CONFIG_CHECK(false, "unknown admission policy '"
                                   << config.policy << "'; registered:"
                                   << known.str());
  }
  return it->second(config);
}

}  // namespace cimtpu::serving
