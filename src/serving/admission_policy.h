#pragma once
// Pluggable admission policies for the continuous-batching scheduler.
//
// Admission — which waiting request joins the running batch next, given
// free KV pages and batch slots — is a first-class scheduling discipline
// in serving systems (vLLM admits FIFO, multi-tenant deployments add
// priority and weighted-fair orderings, rate limiters throttle tenants).
// This module makes it an API seam instead of a hard-coded deque inside
// ContinuousBatchScheduler: a policy OWNS the waiting queue's ordering and
// observes the scheduler's enqueue / admit / preempt-requeue / finish
// transitions, while the scheduler keeps owning capacity checks
// (KvCacheManager::try_admit) and batch-slot limits.
//
// Contract with the scheduler, per admission attempt:
//   1. the scheduler calls `select(context)` — the policy returns the
//      waiting request it wants admitted next (a pointer into its own
//      storage, valid until the next mutating call), or nullptr to
//      throttle admission this step (e.g. every candidate tenant is over
//      its rate cap).  A policy must NEVER throttle when
//      `context.device_empty` is true and it holds requests — with
//      nothing resident the simulated clock cannot advance, so throttling
//      an empty device would deadlock the engine.
//   2. on KvCacheManager admission success the scheduler calls
//      `pop_selected()`; the policy removes the selected request and does
//      its share accounting.  On failure the scheduler stops admitting
//      for this step (head-of-line blocking on the policy's OWN choice —
//      the exact semantics the FIFO baseline always had).
//
// Three disciplines ship on the interface (see the registry at the
// bottom):
//   * "fifo"     — arrival order, preempted requests re-queue at the
//                  front.  Bit-identical to the pre-API scheduler.
//   * "priority" — highest Request::priority first with a linear aging
//                  term (priority + aging_rate * steps_waiting), so a
//                  low-priority request's effective priority eventually
//                  exceeds any bounded class and it cannot starve.
//   * "wfq"      — per-tenant weighted fair queueing over
//                  Request::tenant_id: tenants accumulate virtual work
//                  (admitted prompt+output tokens / weight) and the
//                  backlogged tenant with the least virtual work admits
//                  next, start-time-fair-queueing style, with optional
//                  per-tenant token-rate caps against the simulated clock.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "serving/request_gen.h"

namespace cimtpu::serving {

class MetricsRegistry;

/// What the scheduler can tell a policy about the capacity an admission
/// would have to fit into.  Refreshed before every `select` call.
struct AdmissionContext {
  std::int64_t free_batch_slots = 0;  ///< max_batch minus resident count
  Bytes free_kv_bytes = 0;            ///< device KV budget minus used
  Bytes bytes_per_token = 0;          ///< KV footprint of one cached token
  bool device_empty = false;  ///< nothing resident: the policy MUST offer a
                              ///< candidate if it holds any (see header)
  Seconds now = 0;            ///< simulated clock (rate caps); 0 when the
                              ///< caller never calls set_time
  std::int64_t step = 0;      ///< engine steps planned so far (aging)
};

/// Per-tenant share for WeightedFairAdmission, indexed by
/// Request::tenant_id.  Tenants beyond the configured vector default to
/// weight 1 and no cap.
struct TenantShare {
  double weight = 1.0;  ///< relative admitted-token share (> 0)

  /// Admitted prompt+output tokens per simulated second; 0 disables the
  /// cap.  Enforced as cumulative_admitted <= burst_tokens + cap * now,
  /// so a capped tenant can still burst `burst_tokens` at t=0.
  double token_rate_cap = 0;
  double burst_tokens = 4096;

  void validate() const;
};

/// Policy selection + knobs, carried by SchedulerConfig.  `policy` is a
/// registry key (see admission_policy_names / register_admission_policy).
struct AdmissionConfig {
  std::string policy = "fifo";

  /// "priority": effective priority gained per engine step spent waiting.
  /// 0 disables aging (pure static priority, can starve).
  double aging_rate = 0.01;

  /// "wfq": shares indexed by tenant_id.
  std::vector<TenantShare> tenants;

  void validate() const;
};

/// The admission discipline interface.  Implementations own the waiting
/// queue; the scheduler owns capacity and batch-slot checks.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// Registry key of this policy ("fifo", "priority", "wfq", ...).
  virtual std::string name() const = 0;

  /// A request arrived (scheduler::enqueue).  `step` is the engine step
  /// count at enqueue time (feeds aging).
  virtual void on_enqueue(const Request& request, std::int64_t step) = 0;

  /// A resident request was preempted for recompute and must wait again.
  /// Policies should preserve its seniority (FIFO re-queues at the front).
  virtual void on_preempt_requeue(const Request& request,
                                  std::int64_t step) = 0;

  /// The waiting request this policy wants admitted next, or nullptr to
  /// throttle (never with an empty device — see the header contract).
  /// The pointer stays valid until the next mutating call.
  virtual const Request* select(const AdmissionContext& context) = 0;

  /// Commits the admission of the last `select`ed request: removes it
  /// from the waiting set and updates share accounting.
  virtual void pop_selected() = 0;

  /// A previously admitted request completed (observer, default no-op).
  virtual void on_finish(const Request& request, std::int64_t step);

  /// Publishes policy-specific end-of-run observability into `registry`
  /// under "admission.*" names (serving/obs_registry.h).  Default no-op;
  /// WFQ reports per-tenant admitted tokens and virtual work.
  virtual void publish(MetricsRegistry* registry) const;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
};

/// Arrival order; preempted requests re-queue at the front.  The exact
/// pre-API scheduler behaviour — the golden metric pins run on this.
class FifoAdmission : public AdmissionPolicy {
 public:
  std::string name() const override { return "fifo"; }
  void on_enqueue(const Request& request, std::int64_t step) override;
  void on_preempt_requeue(const Request& request, std::int64_t step) override;
  const Request* select(const AdmissionContext& context) override;
  void pop_selected() override;
  bool empty() const override { return waiting_.empty(); }
  std::size_t size() const override { return waiting_.size(); }

 private:
  std::deque<Request> waiting_;
};

/// Highest effective priority first, where
///   effective = Request::priority + aging_rate * (step - enqueue_step).
/// Ties break towards the earliest enqueue (FIFO among equals).  With
/// aging_rate > 0 a waiting request's effective priority grows without
/// bound, so any request is eventually admitted at sustained pressure
/// (starvation freedom); aging_rate = 0 degenerates to static priority.
class PriorityAdmission : public AdmissionPolicy {
 public:
  explicit PriorityAdmission(double aging_rate) : aging_rate_(aging_rate) {}

  std::string name() const override { return "priority"; }
  void on_enqueue(const Request& request, std::int64_t step) override;
  void on_preempt_requeue(const Request& request, std::int64_t step) override;
  const Request* select(const AdmissionContext& context) override;
  void pop_selected() override;
  bool empty() const override { return waiting_.empty(); }
  std::size_t size() const override { return waiting_.size(); }

 private:
  struct Waiting {
    Request request;
    std::int64_t enqueue_step = 0;  ///< aging reference point
    std::int64_t seq = 0;           ///< tie break: earliest first
  };

  double aging_rate_;
  std::int64_t next_seq_ = 0;
  std::vector<Waiting> waiting_;
  std::size_t selected_ = 0;  ///< index of the last select() winner
};

/// Per-tenant deficit-weighted round robin (start-time fair queueing):
/// each tenant keeps a FIFO of its own requests plus a virtual-work
/// account (admitted prompt+output tokens divided by its weight); the
/// backlogged tenant with the LEAST virtual work admits next, so admitted
/// tokens track the weight ratio whenever multiple tenants stay
/// backlogged.  A tenant becoming backlogged is clamped up to the current
/// virtual time, so idling never banks credit.  Optional per-tenant
/// token-rate caps throttle a tenant once its cumulative admitted tokens
/// exceed burst + cap * now; capped tenants are skipped unless the device
/// is empty (liveness).  Preempted-for-recompute requests re-queue at the
/// front of their tenant's FIFO and refund their charge (re-admission
/// recharges, so recompute churn never double-counts against caps).
class WeightedFairAdmission : public AdmissionPolicy {
 public:
  explicit WeightedFairAdmission(std::vector<TenantShare> tenants)
      : shares_(std::move(tenants)) {}

  std::string name() const override { return "wfq"; }
  void on_enqueue(const Request& request, std::int64_t step) override;
  void on_preempt_requeue(const Request& request, std::int64_t step) override;
  const Request* select(const AdmissionContext& context) override;
  void pop_selected() override;
  bool empty() const override { return waiting_total_ == 0; }
  std::size_t size() const override { return waiting_total_; }

  /// The share applied to `tenant_id` (configured or the default).
  TenantShare share(std::int64_t tenant_id) const;

  void on_finish(const Request& request, std::int64_t step) override;

  /// Per-tenant "admission.tenant<k>.admitted_tokens" / ".virtual_work"
  /// gauges plus "admission.waiting" (ascending tenant id).
  void publish(MetricsRegistry* registry) const override;

 private:
  struct TenantState {
    std::deque<Request> queue;
    double virtual_work = 0;     ///< admitted tokens / weight
    double admitted_tokens = 0;  ///< cumulative, for the rate cap
    std::int64_t in_flight = 0;  ///< admitted but not yet finished
  };

  static double admission_tokens(const Request& request) {
    return static_cast<double>(request.prompt_len + request.output_len);
  }
  /// Clamp a tenant returning from IDLE to the virtual time so idle
  /// tenants cannot bank credit against busy ones.  "Idle" means no
  /// waiting AND no in-flight work — a tenant whose queue drained while a
  /// request is still resident is live, and clamping it would both
  /// penalize it and swallow a later preempt-refund.
  void clamp_to_virtual_time(TenantState& state);

  std::vector<TenantShare> shares_;
  std::map<std::int64_t, TenantState> tenant_states_;  ///< ordered: ties
                                                       ///< break to the
                                                       ///< lowest tenant id
  double virtual_time_ = 0;  ///< virtual work of the last admission
  std::size_t waiting_total_ = 0;
  TenantState* selected_tenant_ = nullptr;
};

// --- Registry ----------------------------------------------------------------

using AdmissionPolicyFactory =
    std::function<std::unique_ptr<AdmissionPolicy>(const AdmissionConfig&)>;

/// Registers a policy under `name` (overwrites an existing entry), so new
/// disciplines plug in without touching the scheduler.
void register_admission_policy(const std::string& name,
                               AdmissionPolicyFactory factory);

/// Registered policy names, sorted ("fifo", "priority", "wfq" built in).
std::vector<std::string> admission_policy_names();

/// Instantiates `config.policy` from the registry; throws ConfigError for
/// an unknown name (listing the registered ones).
std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const AdmissionConfig& config);

}  // namespace cimtpu::serving
