#pragma once
// Pluggable admission policies for the continuous-batching scheduler.
//
// Admission — which waiting request joins the running batch next, given
// free KV pages and batch slots — is a first-class scheduling discipline
// in serving systems (vLLM admits FIFO, multi-tenant deployments add
// priority and weighted-fair orderings, rate limiters throttle tenants).
// This module makes it an API seam instead of a hard-coded deque inside
// ContinuousBatchScheduler: a policy OWNS the waiting queue's ordering and
// observes the scheduler's enqueue / admit / preempt-requeue / finish
// transitions, while the scheduler keeps owning capacity checks
// (KvCacheManager::try_admit) and batch-slot limits.
//
// Contract with the scheduler, per admission attempt:
//   1. the scheduler calls `select(context)` — the policy returns the
//      waiting request it wants admitted next (a pointer into its own
//      storage, valid until the next mutating call), or nullptr to
//      throttle admission this step (e.g. every candidate tenant is over
//      its rate cap).  A policy must NEVER throttle when
//      `context.device_empty` is true and it holds requests — with
//      nothing resident the simulated clock cannot advance, so throttling
//      an empty device would deadlock the engine.
//   2. on KvCacheManager admission success the scheduler calls
//      `pop_selected()`; the policy removes the selected request and does
//      its share accounting.  On failure the scheduler stops admitting
//      for this step (head-of-line blocking on the policy's OWN choice —
//      the exact semantics the FIFO baseline always had).
//
// Four disciplines ship on the interface (see the registry at the
// bottom):
//   * "fifo"     — arrival order, preempted requests re-queue at the
//                  front.  Bit-identical to the pre-API scheduler.
//   * "priority" — highest Request::priority first with a linear aging
//                  term (priority + aging_rate * steps_waiting), so a
//                  low-priority request's effective priority eventually
//                  exceeds any bounded class and it cannot starve.
//   * "wfq"      — per-tenant weighted fair queueing over
//                  Request::tenant_id: tenants accumulate virtual work
//                  (admitted prompt+output tokens / weight) and the
//                  backlogged tenant with the least virtual work admits
//                  next, start-time-fair-queueing style, with optional
//                  per-tenant token-rate caps against the simulated clock.
//   * "edf"      — earliest absolute TTFT deadline first, with admission
//                  control that SHEDS requests that provably cannot meet
//                  their deadline (see EdfAdmission), converting raw
//                  throughput into SLO attainment under overload.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "serving/request_gen.h"

namespace cimtpu::serving {

class MetricsRegistry;

/// What the scheduler can tell a policy about the capacity an admission
/// would have to fit into.  Refreshed before every `select` call.
struct AdmissionContext {
  std::int64_t free_batch_slots = 0;  ///< max_batch minus resident count
  Bytes free_kv_bytes = 0;            ///< device KV budget minus used
  Bytes bytes_per_token = 0;          ///< KV footprint of one cached token
  bool device_empty = false;  ///< nothing resident: the policy MUST offer a
                              ///< candidate if it holds any (see header)
  Seconds now = 0;            ///< simulated clock (rate caps); 0 when the
                              ///< caller never calls set_time
  std::int64_t step = 0;      ///< engine steps planned so far (aging)
};

/// Per-tenant share for WeightedFairAdmission and the per-tenant metrics
/// rollup.  A share names its tenant via `tenant_id`; entries left at the
/// -1 default bind to their index in AdmissionConfig::tenants (the
/// historical positional convention), so sparse or non-contiguous tenant
/// ids can be configured explicitly while dense configs stay unchanged.
/// Tenants no share names default to weight 1 and no cap.
struct TenantShare {
  std::int64_t tenant_id = -1;  ///< Request::tenant_id this share applies
                                ///< to; -1 = the entry's own index

  double weight = 1.0;  ///< relative admitted-token share (> 0)

  /// Admitted prompt+output tokens per simulated second; 0 disables the
  /// cap.  Enforced as cumulative_admitted <= burst_tokens + cap * now,
  /// so a capped tenant can still burst `burst_tokens` at t=0.
  double token_rate_cap = 0;
  double burst_tokens = 4096;

  void validate() const;
};

/// The share `tenants` assigns to `tenant_id` (explicit tenant_id entries
/// first, index-bound entries otherwise), or the default share (weight 1,
/// uncapped) when no entry names it.  Shared by WeightedFairAdmission and
/// the per-tenant metrics rollup so Jain normalization and admission use
/// the same weights.
TenantShare resolve_tenant_share(const std::vector<TenantShare>& tenants,
                                 std::int64_t tenant_id);

/// Policy selection + knobs, carried by SchedulerConfig.  `policy` is a
/// registry key (see admission_policy_names / register_admission_policy).
struct AdmissionConfig {
  std::string policy = "fifo";

  /// "priority": effective priority gained per engine step spent waiting.
  /// 0 disables aging (pure static priority, can starve).
  double aging_rate = 0.01;

  /// "wfq" + per-tenant metrics: shares, resolved by TenantShare::tenant_id
  /// (entries left at -1 bind to their index — see resolve_tenant_share).
  std::vector<TenantShare> tenants;

  /// "edf": conservative floor on the service time still ahead of a
  /// waiting request.  Admission control sheds a never-admitted request
  /// once now + edf_shed_slack_s exceeds its absolute TTFT deadline — it
  /// provably cannot stream its first token in time, so prefilling it
  /// would only steal capacity from requests that can still meet theirs.
  /// 0 (the default) sheds only requests whose deadline already passed.
  Seconds edf_shed_slack_s = 0;

  /// "edf" under graceful degradation (serving/fault.h): extra shed slack
  /// applied while the engine is degraded, tightening admission control
  /// when capacity is known to be impaired.  0 = degradation leaves EDF
  /// shedding unchanged.
  Seconds edf_degraded_extra_slack_s = 0;

  /// The share this config assigns `tenant_id` (resolve_tenant_share over
  /// `tenants`).
  TenantShare share_for(std::int64_t tenant_id) const;

  void validate() const;
};

/// The admission discipline interface.  Implementations own the waiting
/// queue; the scheduler owns capacity and batch-slot checks.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// Registry key of this policy ("fifo", "priority", "wfq", ...).
  virtual std::string name() const = 0;

  /// A request arrived (scheduler::enqueue).  `step` is the engine step
  /// count at enqueue time (feeds aging).
  virtual void on_enqueue(const Request& request, std::int64_t step) = 0;

  /// A resident request was preempted for recompute and must wait again.
  /// Policies should preserve its seniority (FIFO re-queues at the front).
  virtual void on_preempt_requeue(const Request& request,
                                  std::int64_t step) = 0;

  /// The waiting request this policy wants admitted next, or nullptr to
  /// throttle (never with an empty device — see the header contract).
  /// The pointer stays valid until the next mutating call.
  virtual const Request* select(const AdmissionContext& context) = 0;

  /// Commits the admission of the last `select`ed request: removes it
  /// from the waiting set and updates share accounting.
  virtual void pop_selected() = 0;

  /// A previously admitted request completed (observer, default no-op).
  virtual void on_finish(const Request& request, std::int64_t step);

  /// Publishes policy-specific end-of-run observability into `registry`
  /// under "admission.*" names (serving/obs_registry.h).  Default no-op;
  /// WFQ reports per-tenant admitted tokens and virtual work.
  virtual void publish(MetricsRegistry* registry) const;

  /// Moves the requests this policy dropped via admission control since
  /// the last drain into `out` (appended).  Shedding policies (EDF) stash
  /// hopeless requests during `select`; the scheduler drains them every
  /// step, bumps ServingCounters::shed_deadline, and reports them in
  /// StepRecord::shed_ids.  A shed request is gone: it never admits and
  /// never completes.  Default: drains nothing.
  virtual void drain_shed(std::vector<Request>* out);

  /// Whether this policy can EVER shed (default: no).  The scheduler reads
  /// it once at construction and skips the per-step drain entirely for
  /// non-shedding policies, so the common path pays no virtual drain call.
  virtual bool may_shed() const { return false; }

  /// Whether select() is a pure function of the queue contents: no
  /// time/rate dependence, no side effects (shedding), same answer until
  /// the queue itself changes.  When true the scheduler memoizes a failed
  /// head-of-line admission probe — while the queue and the KV manager are
  /// structurally unchanged (decode growth only CONSUMES capacity),
  /// re-probing must fail identically, so it is skipped.  Default: no.
  virtual bool select_is_pure() const { return false; }

  /// Graceful degradation toggled (serving/fault.h sustained-failure
  /// detector).  Default no-op; EDF tightens its shed slack while
  /// degraded.  Called only on actual transitions (hysteresis upstream).
  virtual void set_degraded(bool degraded);

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
};

/// Arrival order; preempted requests re-queue at the front.  The exact
/// pre-API scheduler behaviour — the golden metric pins run on this.
class FifoAdmission : public AdmissionPolicy {
 public:
  std::string name() const override { return "fifo"; }
  void on_enqueue(const Request& request, std::int64_t step) override;
  void on_preempt_requeue(const Request& request, std::int64_t step) override;
  const Request* select(const AdmissionContext& context) override;
  void pop_selected() override;
  bool empty() const override { return waiting_.empty(); }
  std::size_t size() const override { return waiting_.size(); }
  bool select_is_pure() const override { return true; }

 private:
  std::deque<Request> waiting_;
};

/// Highest effective priority first, where
///   effective = Request::priority + aging_rate * (step - enqueue_step).
/// Ties break towards the earliest enqueue (FIFO among equals).  With
/// aging_rate > 0 a waiting request's effective priority grows without
/// bound, so any request is eventually admitted at sustained pressure
/// (starvation freedom); aging_rate = 0 degenerates to static priority.
class PriorityAdmission : public AdmissionPolicy {
 public:
  explicit PriorityAdmission(double aging_rate) : aging_rate_(aging_rate) {}

  std::string name() const override { return "priority"; }
  void on_enqueue(const Request& request, std::int64_t step) override;
  void on_preempt_requeue(const Request& request, std::int64_t step) override;
  const Request* select(const AdmissionContext& context) override;
  void pop_selected() override;
  bool empty() const override { return waiting_.empty(); }
  std::size_t size() const override { return waiting_.size(); }
  /// Pure despite aging: all waiters age at the SAME rate, so effective-
  /// priority differences — and therefore the argmax and its earliest-
  /// enqueue tie-break — are invariant in `step` for a fixed queue.
  bool select_is_pure() const override { return true; }

 private:
  struct Waiting {
    Request request;
    std::int64_t enqueue_step = 0;  ///< aging reference point
    std::int64_t seq = 0;           ///< tie break: earliest first
  };

  double aging_rate_;
  std::int64_t next_seq_ = 0;
  std::vector<Waiting> waiting_;
  std::size_t selected_ = 0;  ///< index of the last select() winner
};

/// Per-tenant deficit-weighted round robin (start-time fair queueing):
/// each tenant keeps a FIFO of its own requests plus a virtual-work
/// account (admitted prompt+output tokens divided by its weight); the
/// backlogged tenant with the LEAST virtual work admits next, so admitted
/// tokens track the weight ratio whenever multiple tenants stay
/// backlogged.  A tenant becoming backlogged is clamped up to the current
/// virtual time, so idling never banks credit.  Optional per-tenant
/// token-rate caps throttle a tenant once its cumulative admitted tokens
/// exceed burst + cap * now; capped tenants are skipped unless the device
/// is empty (liveness).  Preempted-for-recompute requests re-queue at the
/// front of their tenant's FIFO and refund their charge (re-admission
/// recharges, so recompute churn never double-counts against caps).
class WeightedFairAdmission : public AdmissionPolicy {
 public:
  explicit WeightedFairAdmission(std::vector<TenantShare> tenants)
      : shares_(std::move(tenants)) {}

  std::string name() const override { return "wfq"; }
  void on_enqueue(const Request& request, std::int64_t step) override;
  void on_preempt_requeue(const Request& request, std::int64_t step) override;
  const Request* select(const AdmissionContext& context) override;
  void pop_selected() override;
  bool empty() const override { return waiting_total_ == 0; }
  std::size_t size() const override { return waiting_total_; }

  /// The share applied to `tenant_id` (configured or the default).
  TenantShare share(std::int64_t tenant_id) const;

  void on_finish(const Request& request, std::int64_t step) override;

  /// Per-tenant "admission.tenant<k>.admitted_tokens" / ".virtual_work"
  /// gauges plus "admission.waiting" (ascending tenant id).
  void publish(MetricsRegistry* registry) const override;

 private:
  struct TenantState {
    std::deque<Request> queue;
    double virtual_work = 0;     ///< admitted tokens / weight
    double admitted_tokens = 0;  ///< cumulative, for the rate cap
    std::int64_t in_flight = 0;  ///< admitted but not yet finished
  };

  static double admission_tokens(const Request& request) {
    return static_cast<double>(request.prompt_len + request.output_len);
  }
  /// Clamp a tenant returning from IDLE to the virtual time so idle
  /// tenants cannot bank credit against busy ones.  "Idle" means no
  /// waiting AND no in-flight work — a tenant whose queue drained while a
  /// request is still resident is live, and clamping it would both
  /// penalize it and swallow a later preempt-refund.
  void clamp_to_virtual_time(TenantState& state);

  std::vector<TenantShare> shares_;
  std::map<std::int64_t, TenantState> tenant_states_;  ///< ordered: ties
                                                       ///< break to the
                                                       ///< lowest tenant id
  double virtual_time_ = 0;  ///< virtual work of the last admission
  std::size_t waiting_total_ = 0;
  TenantState* selected_tenant_ = nullptr;
};

/// Earliest-deadline-first with load shedding, the SLO-aware discipline:
/// the waiting request with the earliest ABSOLUTE TTFT deadline
/// (arrival_time + Request::ttft_deadline) admits next; deadline-free
/// requests sort after every deadline and stay FIFO among themselves.
/// Admission control sheds: at each `select` the policy drops every
/// never-admitted request whose deadline can provably no longer be met
/// (now + edf_shed_slack past the absolute deadline), freeing prefill
/// capacity for requests that still can — under overload that converts
/// throughput into SLO attainment, which is the whole point.  Preempted
/// requests are shed-exempt: they already streamed a first token, so
/// their TTFT verdict is settled and dropping them would waste paid-for
/// prefill work.  Shed requests accumulate until the scheduler calls
/// `drain_shed`.
class EdfAdmission : public AdmissionPolicy {
 public:
  explicit EdfAdmission(Seconds shed_slack, Seconds degraded_extra_slack = 0)
      : shed_slack_(shed_slack), degraded_extra_slack_(degraded_extra_slack) {}

  std::string name() const override { return "edf"; }
  void on_enqueue(const Request& request, std::int64_t step) override;
  void on_preempt_requeue(const Request& request, std::int64_t step) override;
  const Request* select(const AdmissionContext& context) override;
  void pop_selected() override;
  void drain_shed(std::vector<Request>* out) override;
  bool may_shed() const override { return true; }
  void set_degraded(bool degraded) override { degraded_ = degraded; }
  bool empty() const override { return waiting_.empty() && shed_.empty(); }
  std::size_t size() const override {
    return waiting_.size() + shed_.size();
  }

 private:
  struct Waiting {
    Request request;
    std::int64_t seq = 0;    ///< tie break: earliest enqueue first
    bool resumed = false;    ///< preempt-requeued: shed-exempt
  };

  /// Absolute TTFT deadline; +inf for deadline-free requests (they queue
  /// behind every deadline, FIFO among themselves via seq).
  static double absolute_deadline(const Request& request);

  /// The slack currently in force: shed_slack_ plus the degraded extra
  /// while the sustained-failure detector holds the engine degraded.
  Seconds effective_slack() const {
    return degraded_ ? shed_slack_ + degraded_extra_slack_ : shed_slack_;
  }

  Seconds shed_slack_;
  Seconds degraded_extra_slack_;
  bool degraded_ = false;
  std::int64_t next_seq_ = 0;
  std::vector<Waiting> waiting_;
  std::vector<Request> shed_;  ///< dropped, awaiting drain_shed
  std::size_t selected_ = 0;   ///< index of the last select() winner
};

// --- Registry ----------------------------------------------------------------

using AdmissionPolicyFactory =
    std::function<std::unique_ptr<AdmissionPolicy>(const AdmissionConfig&)>;

/// Registers a policy under `name` (overwrites an existing entry), so new
/// disciplines plug in without touching the scheduler.
void register_admission_policy(const std::string& name,
                               AdmissionPolicyFactory factory);

/// Registered policy names, sorted ("fifo", "priority", "wfq" built in).
std::vector<std::string> admission_policy_names();

/// Instantiates `config.policy` from the registry; throws ConfigError for
/// an unknown name (listing the registered ones).
std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const AdmissionConfig& config);

}  // namespace cimtpu::serving
