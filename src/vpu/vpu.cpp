#include "vpu/vpu.h"

#include <cmath>

#include "common/status.h"

namespace cimtpu::vpu {

void VpuSpec::validate() const {
  CIMTPU_CONFIG_CHECK(sublanes > 0 && lanes > 0,
                      "VPU lane counts must be positive");
  CIMTPU_CONFIG_CHECK(ops_per_lane_per_cycle > 0,
                      "VPU issue rate must be positive");
}

Vpu::Vpu(VpuSpec spec, const tech::EnergyModel& energy,
         const tech::AreaModel& area)
    : spec_(spec), energy_(&energy) {
  spec_.validate();
  area_mm2_ = area.vpu(spec_.total_lanes());
}

Watts Vpu::leakage_power() const {
  return area_mm2_ * energy_->logic_leakage_per_mm2();
}

VpuCost Vpu::evaluate(const ir::Op& op) const {
  CIMTPU_CHECK_MSG(!op.is_matmul(),
                   "matmul op '" << op.name << "' routed to the VPU");
  VpuCost cost;
  cost.ops = op.flops();

  switch (op.kind) {
    case ir::OpKind::kSoftmax:
    case ir::OpKind::kLayerNorm: {
      // Row ops execute pass-structured: each pass touches every element
      // once at the vector width; rows narrower than the vector width
      // waste lanes (common in decode where rows = batch).
      // Both run as two element-visiting passes (online softmax: fused
      // max+sum then normalize; layernorm: moments then normalize).
      const double passes = 2.0;
      const double ops_per_elem_pass =
          op.flops() / (static_cast<double>(op.rows) * op.cols * passes);
      // Rows map to sublanes, columns to lanes; narrow rows/short columns
      // strand lanes (decode rows = batch << 8*128 wastes most of the VPU).
      const double col_chunks =
          std::ceil(static_cast<double>(op.cols) / spec_.lanes);
      const double row_groups =
          std::ceil(static_cast<double>(op.rows) / spec_.sublanes);
      cost.busy_cycles = passes * row_groups * col_chunks *
                         ops_per_elem_pass / spec_.ops_per_lane_per_cycle;
      break;
    }
    case ir::OpKind::kGelu:
    case ir::OpKind::kElementwise:
      cost.busy_cycles =
          std::ceil(op.flops() / ops_per_cycle());
      break;
    case ir::OpKind::kEmbeddingLookup:
    case ir::OpKind::kDataMovement:
      // Pure data movement: one element per lane per cycle through the VPU
      // register path (the memory cost dominates and is modeled by the
      // memory system).
      cost.busy_cycles = std::ceil(
          op.moving_bytes() / ir::dtype_bytes(op.dtype) / ops_per_cycle());
      break;
    case ir::OpKind::kMatmul:
      throw UnsupportedError("matmul on VPU");
  }

  cost.busy_energy = cost.ops * energy_->vpu_per_op();
  return cost;
}

}  // namespace cimtpu::vpu
