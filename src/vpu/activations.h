#pragma once
// Functional activation / normalization kernels backing the VPU cost model.

#include <vector>

namespace cimtpu::vpu {

/// Exact GeLU: x * Phi(x) with the Gaussian CDF via erf.
float gelu_exact(float x);

/// Tanh-approximated GeLU, the variant DiT uses (paper Sec. III-C):
///   0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 x^3))).
float gelu_tanh(float x);

/// LayerNorm over one row: (x - mean) / sqrt(var + eps) * gamma + beta.
std::vector<float> layer_norm(const std::vector<float>& x,
                              const std::vector<float>& gamma,
                              const std::vector<float>& beta,
                              float eps = 1e-5f);

/// DiT adaptive modulation: x * (1 + scale) + shift (the "Shift & Scale"
/// blocks conditioning injects around attention/MLP in each DiT block).
std::vector<float> shift_scale(const std::vector<float>& x, float shift,
                               float scale);

}  // namespace cimtpu::vpu
