#pragma once
// Functional scaled-dot-product attention reference.
//
// Ties the pieces together numerically: Q*K^T scaling, the online-softmax
// normalizer (the VPU algorithm the paper adopts [27]) applied in a
// streaming/tiled fashion, and the S*V product.  The streaming variant
// processes the KV sequence in chunks — exactly how a TPU walks a KV cache
// that is larger than VMEM — and must match the naive reference, which is
// what makes chunked attention legal for the performance model.

#include <cstddef>
#include <vector>

namespace cimtpu::vpu {

/// Row-major matrix view helpers are intentionally avoided; shapes are
/// passed explicitly to keep the reference obvious.
struct AttentionShape {
  int q_rows = 1;    ///< query positions
  int kv_rows = 1;   ///< cached positions
  int head_dim = 1;  ///< d_head
};

/// Naive reference: softmax(Q K^T / sqrt(d)) V with full materialization.
std::vector<float> attention_reference(const std::vector<float>& q,
                                       const std::vector<float>& k,
                                       const std::vector<float>& v,
                                       const AttentionShape& shape);

/// Streaming attention: walks the KV rows in chunks of `chunk_rows`,
/// maintaining online-softmax state and a rescaled output accumulator per
/// query row (flash-attention-style single pass).
std::vector<float> attention_streaming(const std::vector<float>& q,
                                       const std::vector<float>& k,
                                       const std::vector<float>& v,
                                       const AttentionShape& shape,
                                       int chunk_rows);

}  // namespace cimtpu::vpu
