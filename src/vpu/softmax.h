#pragma once
// Softmax implementations.
//
// The simulator's VPU cost model assumes the online-normalizer algorithm of
// Milakov & Gimelshein (2018) — the same algorithm the paper adopts [27].
// The functional implementations here back the cost model's pass counts and
// are property-tested for numerical equivalence with the naive algorithm.

#include <cstddef>
#include <vector>

namespace cimtpu::vpu {

/// Naive three-pass softmax (max, exp-sum, normalize); numerically stable
/// reference.
std::vector<float> softmax_reference(const std::vector<float>& x);

/// Online-normalizer softmax: a single fused pass maintains the running
/// maximum and a running sum rescaled on-the-fly, then one normalize pass.
/// Two passes total instead of three.
std::vector<float> softmax_online(const std::vector<float>& x);

/// State of the online normalizer after consuming a prefix; exposed so the
/// streaming property (merging partial results) can be tested — this is
/// what lets the VPU process rows in VMEM-sized chunks.
struct OnlineSoftmaxState {
  float running_max = -__builtin_huge_valf();
  float running_sum = 0.0f;

  /// Consumes one element.
  void update(float value);
  /// Merges another partial state (associative combine).
  void merge(const OnlineSoftmaxState& other);
};

/// Number of element-visits per row for the online algorithm (2) vs naive
/// (3); used by the VPU cost model.
constexpr double online_softmax_passes() { return 2.0; }
constexpr double naive_softmax_passes() { return 3.0; }

}  // namespace cimtpu::vpu
