#include "vpu/attention.h"

#include <cmath>

#include "common/status.h"
#include "vpu/softmax.h"

namespace cimtpu::vpu {
namespace {

void validate(const std::vector<float>& q, const std::vector<float>& k,
              const std::vector<float>& v, const AttentionShape& shape) {
  CIMTPU_CHECK_MSG(shape.q_rows > 0 && shape.kv_rows > 0 && shape.head_dim > 0,
                   "attention shape must be positive");
  CIMTPU_CHECK_MSG(q.size() == static_cast<std::size_t>(shape.q_rows) *
                                   shape.head_dim,
                   "Q size mismatch");
  CIMTPU_CHECK_MSG(k.size() == static_cast<std::size_t>(shape.kv_rows) *
                                   shape.head_dim,
                   "K size mismatch");
  CIMTPU_CHECK_MSG(v.size() == static_cast<std::size_t>(shape.kv_rows) *
                                   shape.head_dim,
                   "V size mismatch");
}

}  // namespace

std::vector<float> attention_reference(const std::vector<float>& q,
                                       const std::vector<float>& k,
                                       const std::vector<float>& v,
                                       const AttentionShape& shape) {
  validate(q, k, v, shape);
  const float scale = 1.0f / std::sqrt(static_cast<float>(shape.head_dim));
  std::vector<float> output(
      static_cast<std::size_t>(shape.q_rows) * shape.head_dim, 0.0f);

  std::vector<float> scores(shape.kv_rows);
  for (int i = 0; i < shape.q_rows; ++i) {
    for (int j = 0; j < shape.kv_rows; ++j) {
      double dot = 0;
      for (int d = 0; d < shape.head_dim; ++d) {
        dot += static_cast<double>(
                   q[static_cast<std::size_t>(i) * shape.head_dim + d]) *
               k[static_cast<std::size_t>(j) * shape.head_dim + d];
      }
      scores[j] = static_cast<float>(dot) * scale;
    }
    const std::vector<float> probs = softmax_reference(scores);
    for (int j = 0; j < shape.kv_rows; ++j) {
      for (int d = 0; d < shape.head_dim; ++d) {
        output[static_cast<std::size_t>(i) * shape.head_dim + d] +=
            probs[j] * v[static_cast<std::size_t>(j) * shape.head_dim + d];
      }
    }
  }
  return output;
}

std::vector<float> attention_streaming(const std::vector<float>& q,
                                       const std::vector<float>& k,
                                       const std::vector<float>& v,
                                       const AttentionShape& shape,
                                       int chunk_rows) {
  validate(q, k, v, shape);
  CIMTPU_CHECK_MSG(chunk_rows > 0, "chunk_rows must be positive");
  const float scale = 1.0f / std::sqrt(static_cast<float>(shape.head_dim));
  std::vector<float> output(
      static_cast<std::size_t>(shape.q_rows) * shape.head_dim, 0.0f);

  std::vector<float> accumulator(shape.head_dim);
  for (int i = 0; i < shape.q_rows; ++i) {
    OnlineSoftmaxState state;
    std::fill(accumulator.begin(), accumulator.end(), 0.0f);

    for (int chunk = 0; chunk < shape.kv_rows; chunk += chunk_rows) {
      const int end = std::min(chunk + chunk_rows, shape.kv_rows);
      for (int j = chunk; j < end; ++j) {
        double dot = 0;
        for (int d = 0; d < shape.head_dim; ++d) {
          dot += static_cast<double>(
                     q[static_cast<std::size_t>(i) * shape.head_dim + d]) *
                 k[static_cast<std::size_t>(j) * shape.head_dim + d];
        }
        const float score = static_cast<float>(dot) * scale;

        // Online update: when the running max moves, previously
        // accumulated output rescales by exp(old_max - new_max).  On the
        // first element old_max is -inf, the rescale factor is 0, and the
        // (all-zero) accumulator is unaffected.
        const float old_max = state.running_max;
        state.update(score);
        if (state.running_max != old_max) {
          const float rescale = std::exp(old_max - state.running_max);
          for (float& acc : accumulator) acc *= rescale;
        }
        const float weight = std::exp(score - state.running_max);
        for (int d = 0; d < shape.head_dim; ++d) {
          accumulator[d] +=
              weight * v[static_cast<std::size_t>(j) * shape.head_dim + d];
        }
      }
    }
    for (int d = 0; d < shape.head_dim; ++d) {
      output[static_cast<std::size_t>(i) * shape.head_dim + d] =
          accumulator[d] / state.running_sum;
    }
  }
  return output;
}

}  // namespace cimtpu::vpu
