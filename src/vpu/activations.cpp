#include "vpu/activations.h"

#include <cmath>

#include "common/status.h"

namespace cimtpu::vpu {

float gelu_exact(float x) {
  return 0.5f * x * (1.0f + std::erf(x / std::sqrt(2.0f)));
}

float gelu_tanh(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

std::vector<float> layer_norm(const std::vector<float>& x,
                              const std::vector<float>& gamma,
                              const std::vector<float>& beta, float eps) {
  CIMTPU_CHECK_MSG(!x.empty(), "layer_norm of empty row");
  CIMTPU_CHECK_MSG(x.size() == gamma.size() && x.size() == beta.size(),
                   "layer_norm parameter size mismatch");
  double mean = 0.0;
  for (float value : x) mean += value;
  mean /= static_cast<double>(x.size());
  double var = 0.0;
  for (float value : x) {
    const double d = value - mean;
    var += d * d;
  }
  var /= static_cast<double>(x.size());
  const double inv_std = 1.0 / std::sqrt(var + eps);
  std::vector<float> result(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    result[i] = static_cast<float>((x[i] - mean) * inv_std) * gamma[i] + beta[i];
  }
  return result;
}

std::vector<float> shift_scale(const std::vector<float>& x, float shift,
                               float scale) {
  std::vector<float> result(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    result[i] = x[i] * (1.0f + scale) + shift;
  }
  return result;
}

}  // namespace cimtpu::vpu
