#pragma once
// Vector processing unit cost model.
//
// TPUv4i's VPU is an 8x128-lane SIMD engine (Table I: vector width 8x128).
// It executes the non-matrix operators: Softmax (online normalizer),
// LayerNorm, GeLU (tanh approximation), elementwise maps, and embedding
// gathers.  The VPU is IDENTICAL in the baseline and CIM designs — the
// paper replaces only the MXUs — so its model is shared.

#include "common/units.h"
#include "ir/op.h"
#include "tech/area_model.h"
#include "tech/energy_model.h"

namespace cimtpu::vpu {

struct VpuSpec {
  int sublanes = 8;
  int lanes = 128;
  double ops_per_lane_per_cycle = 1.0;

  int total_lanes() const { return sublanes * lanes; }
  void validate() const;
};

/// Cost of one vector op on the VPU.
struct VpuCost {
  Cycles busy_cycles = 0;
  double ops = 0;
  Joules busy_energy = 0;
};

class Vpu {
 public:
  Vpu(VpuSpec spec, const tech::EnergyModel& energy,
      const tech::AreaModel& area);

  const VpuSpec& spec() const { return spec_; }

  double ops_per_cycle() const {
    return spec_.total_lanes() * spec_.ops_per_lane_per_cycle;
  }

  SquareMm area() const { return area_mm2_; }
  Watts leakage_power() const;

  /// Costs a non-matmul op.  Throws UnsupportedError for matmul kinds.
  VpuCost evaluate(const ir::Op& op) const;

 private:
  VpuSpec spec_;
  const tech::EnergyModel* energy_;
  SquareMm area_mm2_;
};

}  // namespace cimtpu::vpu
