#include "vpu/softmax.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace cimtpu::vpu {

std::vector<float> softmax_reference(const std::vector<float>& x) {
  CIMTPU_CHECK_MSG(!x.empty(), "softmax of empty vector");
  const float max = *std::max_element(x.begin(), x.end());
  std::vector<float> result(x.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    result[i] = std::exp(x[i] - max);
    sum += result[i];
  }
  for (float& value : result) value = static_cast<float>(value / sum);
  return result;
}

void OnlineSoftmaxState::update(float value) {
  if (value > running_max) {
    running_sum = running_sum * std::exp(running_max - value) + 1.0f;
    running_max = value;
  } else {
    running_sum += std::exp(value - running_max);
  }
}

void OnlineSoftmaxState::merge(const OnlineSoftmaxState& other) {
  if (other.running_sum == 0.0f) return;
  if (running_sum == 0.0f) {
    *this = other;
    return;
  }
  const float new_max = std::max(running_max, other.running_max);
  running_sum = running_sum * std::exp(running_max - new_max) +
                other.running_sum * std::exp(other.running_max - new_max);
  running_max = new_max;
}

std::vector<float> softmax_online(const std::vector<float>& x) {
  CIMTPU_CHECK_MSG(!x.empty(), "softmax of empty vector");
  OnlineSoftmaxState state;
  for (float value : x) state.update(value);
  std::vector<float> result(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    result[i] = std::exp(x[i] - state.running_max) / state.running_sum;
  }
  return result;
}

}  // namespace cimtpu::vpu
