#pragma once
// Chip-level configuration (paper Table I) and the design points explored
// in Sec. V (Table IV, Designs A and B).

#include <string>

#include "cim/cim_mxu.h"
#include "common/units.h"
#include "mem/link.h"
#include "mem/memory.h"
#include "systolic/systolic_mxu.h"
#include "tech/technology.h"
#include "vpu/vpu.h"

namespace cimtpu::arch {

enum class MxuKind { kDigitalSystolic, kCim };

std::string mxu_kind_name(MxuKind kind);

struct TpuChipConfig {
  std::string name = "tpu";
  std::string technology = "7nm";  ///< see tech::node_by_name
  Hertz clock = 0;                 ///< 0 -> node nominal clock

  int mxu_count = 4;
  MxuKind mxu_kind = MxuKind::kDigitalSystolic;
  systolic::SystolicMxuSpec systolic;  ///< used when kDigitalSystolic
  cim::CimMxuSpec cim;                 ///< used when kCim

  vpu::VpuSpec vpu;
  mem::MemorySystemSpec memory;
  mem::IciLinkSpec ici;

  /// Peak MACs/cycle across all MXUs.
  double total_macs_per_cycle() const;

  /// Effective clock (explicit or node nominal).
  Hertz effective_clock() const;

  void validate() const;
};

// --- Presets -----------------------------------------------------------------

/// Baseline TPUv4i: one TensorCore with four 128x128 digital systolic MXUs
/// (Table I left column).
TpuChipConfig tpu_v4i_baseline();

/// The paper's default CIM-based TPU: four CIM-MXUs, each a 16x8 grid of
/// 128x256 CIM cores — same 65536 MACs/cycle as the baseline.
TpuChipConfig cim_tpu_default();

/// A CIM-based TPU with an arbitrary Table IV design choice.
TpuChipConfig cim_tpu(int mxu_count, int grid_rows, int grid_cols);

/// Design A (Sec. V-A): four CIM-MXUs with 8x8 core grids — the
/// latency/energy sweet spot for LLM inference.
TpuChipConfig design_a();

/// Design B (Sec. V-A): eight CIM-MXUs with 16x8 core grids — the
/// high-throughput choice for DiT inference.
TpuChipConfig design_b();

}  // namespace cimtpu::arch
