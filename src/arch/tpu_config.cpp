#include "arch/tpu_config.h"

#include "common/status.h"

namespace cimtpu::arch {

std::string mxu_kind_name(MxuKind kind) {
  switch (kind) {
    case MxuKind::kDigitalSystolic:
      return "digital-systolic";
    case MxuKind::kCim:
      return "cim";
  }
  return "?";
}

double TpuChipConfig::total_macs_per_cycle() const {
  if (mxu_kind == MxuKind::kDigitalSystolic) {
    return static_cast<double>(mxu_count) * systolic.rows * systolic.cols;
  }
  return static_cast<double>(mxu_count) * cim.cores() * cim.core_macs_per_cycle;
}

Hertz TpuChipConfig::effective_clock() const {
  if (clock > 0) return clock;
  return tech::node_by_name(technology).nominal_clock;
}

void TpuChipConfig::validate() const {
  CIMTPU_CONFIG_CHECK(mxu_count > 0, "chip '" << name << "': mxu_count");
  tech::node_by_name(technology);  // throws for unknown nodes
  if (mxu_kind == MxuKind::kDigitalSystolic) {
    systolic.validate();
  } else {
    cim.validate();
  }
  vpu.validate();
  memory.validate();
}

TpuChipConfig tpu_v4i_baseline() {
  TpuChipConfig config;
  config.name = "tpuv4i-baseline";
  config.mxu_kind = MxuKind::kDigitalSystolic;
  config.mxu_count = 4;
  config.systolic.rows = 128;
  config.systolic.cols = 128;
  return config;
}

TpuChipConfig cim_tpu(int mxu_count, int grid_rows, int grid_cols) {
  TpuChipConfig config;
  config.name = "cim-tpu-" + std::to_string(mxu_count) + "x(" +
                std::to_string(grid_rows) + "x" + std::to_string(grid_cols) +
                ")";
  config.mxu_kind = MxuKind::kCim;
  config.mxu_count = mxu_count;
  config.cim.grid_rows = grid_rows;
  config.cim.grid_cols = grid_cols;
  return config;
}

TpuChipConfig cim_tpu_default() {
  TpuChipConfig config = cim_tpu(4, 16, 8);
  config.name = "cim-tpu";
  return config;
}

TpuChipConfig design_a() {
  TpuChipConfig config = cim_tpu(4, 8, 8);
  config.name = "design-a";
  return config;
}

TpuChipConfig design_b() {
  TpuChipConfig config = cim_tpu(8, 16, 8);
  config.name = "design-b";
  return config;
}

}  // namespace cimtpu::arch
