#pragma once
// A fully-instantiated TPU chip: technology-bound cost models for every
// component, ready for the simulator.

#include <memory>
#include <vector>

#include "arch/tpu_config.h"
#include "mem/link.h"
#include "mem/memory.h"
#include "systolic/matrix_unit.h"
#include "tech/area_model.h"
#include "tech/energy_model.h"
#include "vpu/vpu.h"

namespace cimtpu::arch {

/// Area breakdown of the chip's modeled blocks.
struct ChipAreaReport {
  SquareMm mxus = 0;
  SquareMm vpu = 0;
  SquareMm vmem = 0;
  SquareMm cmem = 0;
  SquareMm total() const { return mxus + vpu + vmem + cmem; }
};

class TpuChip {
 public:
  explicit TpuChip(TpuChipConfig config);

  // Non-copyable (owns models with internal pointers).
  TpuChip(const TpuChip&) = delete;
  TpuChip& operator=(const TpuChip&) = delete;

  const TpuChipConfig& config() const { return config_; }
  const tech::TechnologyNode& node() const { return node_; }
  Hertz clock() const { return clock_; }

  const tech::EnergyModel& energy() const { return *energy_; }
  const tech::AreaModel& area_model() const { return *area_; }
  const mem::MemorySystem& memory() const { return *memory_; }
  const mem::IciFabric& ici() const { return *ici_; }
  const vpu::Vpu& vpu() const { return *vpu_; }

  /// The prototype matrix unit (all MXUs on a chip are identical).
  const systolic::MatrixUnit& mxu() const { return *mxu_; }
  int mxu_count() const { return config_.mxu_count; }

  /// Peak matrix throughput (ops/s) of the whole chip.
  double peak_ops_per_second() const {
    return mxu_->peak_ops_per_second(clock_) * mxu_count();
  }

  /// Aggregate MXU leakage power.
  Watts mxu_leakage_power() const {
    return mxu_->leakage_power() * mxu_count();
  }

  /// Aggregate MXU idle power (architecturally idle, clock running).
  Watts mxu_idle_power(ir::DType dtype) const {
    return mxu_->idle_power(dtype) * mxu_count();
  }

  ChipAreaReport area_report() const;

 private:
  TpuChipConfig config_;
  tech::TechnologyNode node_;
  Hertz clock_;
  std::unique_ptr<tech::EnergyModel> energy_;
  std::unique_ptr<tech::AreaModel> area_;
  std::unique_ptr<mem::MemorySystem> memory_;
  std::unique_ptr<mem::IciFabric> ici_;
  std::unique_ptr<vpu::Vpu> vpu_;
  systolic::MatrixUnitPtr mxu_;
};

}  // namespace cimtpu::arch
