#pragma once
// Chip summary reports: renders a TpuChip's configuration, area budget and
// power envelope as human-readable text (used by examples and benches) and
// as key-value pairs (used by tooling).

#include <string>
#include <vector>

#include "arch/chip.h"

namespace cimtpu::arch {

/// One figure in the chip summary.
struct ChipFigure {
  std::string name;
  std::string value;
};

/// All summary figures: identity, peak throughput, memory system, area
/// budget per block, leakage/idle/peak power.
std::vector<ChipFigure> chip_figures(const TpuChip& chip);

/// Renders the figures as an aligned text block.
std::string chip_summary(const TpuChip& chip);

/// Renders a side-by-side comparison of two chips (baseline vs candidate)
/// with ratio annotations on area and power rows.
std::string chip_comparison(const TpuChip& baseline, const TpuChip& candidate);

}  // namespace cimtpu::arch
