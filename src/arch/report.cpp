#include "arch/report.h"

#include <algorithm>
#include <sstream>

#include "common/table.h"
#include "common/units.h"

namespace cimtpu::arch {

std::vector<ChipFigure> chip_figures(const TpuChip& chip) {
  const TpuChipConfig& config = chip.config();
  const ChipAreaReport area = chip.area_report();
  const ir::DType dtype = ir::DType::kInt8;

  std::vector<ChipFigure> figures;
  figures.push_back({"name", config.name});
  figures.push_back({"technology", config.technology});
  figures.push_back({"clock", cell_f(chip.clock() / GHz, 2) + " GHz"});
  figures.push_back({"mxu kind", mxu_kind_name(config.mxu_kind)});
  figures.push_back({"mxu count", cell_i(config.mxu_count)});
  figures.push_back({"mxu unit", chip.mxu().name()});
  figures.push_back(
      {"peak throughput", format_ops_rate(chip.peak_ops_per_second())});
  figures.push_back(
      {"vpu", std::to_string(config.vpu.sublanes) + "x" +
                  std::to_string(config.vpu.lanes) + " lanes"});
  figures.push_back({"vmem", format_bytes(config.memory.vmem.capacity)});
  figures.push_back({"cmem", format_bytes(config.memory.cmem.capacity)});
  figures.push_back(
      {"hbm", format_bytes(config.memory.hbm.capacity) + " @ " +
                  cell_f(config.memory.hbm.bandwidth / GBps, 0) + " GB/s"});
  figures.push_back(
      {"ici", std::to_string(config.ici.links_per_chip) + " x " +
                  cell_f(config.ici.bandwidth_per_link / GBps, 0) + " GB/s"});
  figures.push_back({"area.mxus", cell_f(area.mxus, 2) + " mm2"});
  figures.push_back({"area.vpu", cell_f(area.vpu, 2) + " mm2"});
  figures.push_back({"area.vmem", cell_f(area.vmem, 2) + " mm2"});
  figures.push_back({"area.cmem", cell_f(area.cmem, 2) + " mm2"});
  figures.push_back({"area.total", cell_f(area.total(), 2) + " mm2"});
  figures.push_back(
      {"power.mxu_peak",
       format_power(chip.mxu().peak_dynamic_power(dtype) * chip.mxu_count())});
  figures.push_back({"power.mxu_idle", format_power(chip.mxu_idle_power(dtype))});
  figures.push_back({"power.mxu_leakage", format_power(chip.mxu_leakage_power())});
  return figures;
}

std::string chip_summary(const TpuChip& chip) {
  const std::vector<ChipFigure> figures = chip_figures(chip);
  std::size_t width = 0;
  for (const ChipFigure& figure : figures) {
    width = std::max(width, figure.name.size());
  }
  std::ostringstream out;
  for (const ChipFigure& figure : figures) {
    out << "  " << figure.name
        << std::string(width - figure.name.size() + 2, ' ') << figure.value
        << "\n";
  }
  return out.str();
}

std::string chip_comparison(const TpuChip& baseline,
                            const TpuChip& candidate) {
  const ir::DType dtype = ir::DType::kInt8;
  std::ostringstream out;
  out << "chip comparison: " << baseline.config().name << " -> "
      << candidate.config().name << "\n";
  out << "  peak:      " << format_ops_rate(baseline.peak_ops_per_second())
      << " -> " << format_ops_rate(candidate.peak_ops_per_second()) << " ("
      << format_ratio(candidate.peak_ops_per_second() /
                      baseline.peak_ops_per_second())
      << ")\n";
  out << "  mxu area:  " << cell_f(baseline.area_report().mxus, 1)
      << " mm2 -> " << cell_f(candidate.area_report().mxus, 1) << " mm2 ("
      << format_ratio(baseline.area_report().mxus /
                      candidate.area_report().mxus)
      << " smaller)\n";
  const Watts base_peak =
      baseline.mxu().peak_dynamic_power(dtype) * baseline.mxu_count();
  const Watts cand_peak =
      candidate.mxu().peak_dynamic_power(dtype) * candidate.mxu_count();
  out << "  mxu power: " << format_power(base_peak) << " -> "
      << format_power(cand_peak) << " ("
      << format_ratio(base_peak / cand_peak) << " lower at peak)\n";
  return out.str();
}

}  // namespace cimtpu::arch
