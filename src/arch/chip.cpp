#include "arch/chip.h"

#include "cim/cim_mxu.h"
#include "systolic/systolic_mxu.h"

namespace cimtpu::arch {

TpuChip::TpuChip(TpuChipConfig config) : config_(std::move(config)) {
  config_.validate();
  node_ = tech::node_by_name(config_.technology);
  clock_ = config_.effective_clock();
  // The node drives energy/area scaling; pin its nominal clock to the
  // chip's effective clock so power integrals are consistent.
  node_.nominal_clock = clock_;
  energy_ = std::make_unique<tech::EnergyModel>(node_);
  area_ = std::make_unique<tech::AreaModel>(node_);
  memory_ = std::make_unique<mem::MemorySystem>(config_.memory, *energy_);
  ici_ = std::make_unique<mem::IciFabric>(config_.ici, *energy_);
  vpu_ = std::make_unique<vpu::Vpu>(config_.vpu, *energy_, *area_);
  if (config_.mxu_kind == MxuKind::kDigitalSystolic) {
    mxu_ = std::make_unique<systolic::SystolicMxu>(config_.systolic, *energy_,
                                                   *area_);
  } else {
    mxu_ = std::make_unique<cim::CimMxu>(config_.cim, *energy_, *area_);
  }
}

ChipAreaReport TpuChip::area_report() const {
  ChipAreaReport report;
  report.mxus = mxu_->area() * mxu_count();
  report.vpu = vpu_->area();
  report.vmem = area_->sram(config_.memory.vmem.capacity);
  report.cmem = area_->sram(config_.memory.cmem.capacity);
  return report;
}

}  // namespace cimtpu::arch
