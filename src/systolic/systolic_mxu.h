#pragma once
// Baseline digital MXU: a weight-stationary systolic array in the style of
// TPUv4i's 128x128 MXU, costed with a SCALE-Sim-like analytic model
// (Samajdar et al., ISPASS'20 — the paper's own baseline methodology).
//
// Timing model for one [m, k] x [k, n] instance on an R x C array:
//   * the weight matrix is tiled into ceil(k/R) * ceil(n/C) tiles;
//   * each tile's weights are shifted in through the array over
//     R * dtype_bytes cycles and CANNOT overlap compute (the vertical
//     datapath is shared with partial sums);
//   * the m input rows then stream through (m cycles in steady state);
//   * the fill/drain ramp (R + C - 2 cycles) is paid once per instance —
//     consecutive tiles of the same instance pipeline their streams.
//
// Energy model: useful MACs at full per-MAC energy; idle PE slots during
// busy cycles burn kDigitalBubbleActivity of a MAC (clock + skew registers
// are not gated); weights pay a per-hop register-shift energy.

#include "systolic/matrix_unit.h"

namespace cimtpu::systolic {

/// Systolic dataflow (SCALE-Sim taxonomy).  TPUv4i's MXU is
/// weight-stationary; output-stationary is provided for dataflow ablations
/// (the CIM-MXU itself is output-stationary at the grid level).
enum class Dataflow {
  kWeightStationary,  ///< weights resident; inputs stream, psums ripple
  kOutputStationary,  ///< outputs resident; inputs AND weights stream
};

std::string dataflow_name(Dataflow dataflow);

struct SystolicMxuSpec {
  int rows = 128;  ///< contraction (K) extent of the PE array (WS)
  int cols = 128;  ///< output (N) extent of the PE array
  Dataflow dataflow = Dataflow::kWeightStationary;

  void validate() const;
};

class SystolicMxu final : public MatrixUnit {
 public:
  SystolicMxu(SystolicMxuSpec spec, const tech::EnergyModel& energy,
              const tech::AreaModel& area);

  const SystolicMxuSpec& spec() const { return spec_; }

  std::string name() const override;
  double macs_per_cycle() const override;
  double weight_ingest_bytes_per_cycle() const override;
  bool overlapped_weight_load() const override { return false; }
  SquareMm area() const override;
  Watts leakage_power() const override;
  Watts peak_dynamic_power(ir::DType dtype) const override;
  Watts idle_power(ir::DType dtype) const override;
  MxuCost evaluate(const GemmWorkload& workload) const override;

 private:
  MxuCost evaluate_weight_stationary(const GemmWorkload& workload) const;
  MxuCost evaluate_output_stationary(const GemmWorkload& workload) const;
  /// Shared energy accounting from the computed cycle/traffic figures.
  void fill_energy(const GemmWorkload& workload, MxuCost& cost) const;

  SystolicMxuSpec spec_;
  const tech::EnergyModel* energy_;
  SquareMm area_mm2_;
};

}  // namespace cimtpu::systolic
