#include "systolic/systolic_mxu.h"

#include "common/math_util.h"
#include "common/status.h"
#include "tech/calibration.h"

namespace cimtpu::systolic {

std::string dataflow_name(Dataflow dataflow) {
  switch (dataflow) {
    case Dataflow::kWeightStationary:
      return "weight-stationary";
    case Dataflow::kOutputStationary:
      return "output-stationary";
  }
  return "?";
}

void SystolicMxuSpec::validate() const {
  CIMTPU_CONFIG_CHECK(rows > 0 && cols > 0,
                      "systolic array dims must be positive: " << rows << "x"
                                                               << cols);
}

SystolicMxu::SystolicMxu(SystolicMxuSpec spec, const tech::EnergyModel& energy,
                         const tech::AreaModel& area)
    : spec_(spec), energy_(&energy) {
  spec_.validate();
  area_mm2_ = area.digital_array(spec_.rows, spec_.cols);
}

std::string SystolicMxu::name() const {
  return "systolic-" + std::to_string(spec_.rows) + "x" +
         std::to_string(spec_.cols) +
         (spec_.dataflow == Dataflow::kOutputStationary ? "-os" : "");
}

double SystolicMxu::macs_per_cycle() const {
  return static_cast<double>(spec_.rows) * spec_.cols;
}

double SystolicMxu::weight_ingest_bytes_per_cycle() const {
  // One PE row per cycle enters the array (INT8 reference): cols bytes.
  return tech::cal::kSystolicWeightRowsPerCycle * spec_.cols;
}

SquareMm SystolicMxu::area() const { return area_mm2_; }

Watts SystolicMxu::leakage_power() const {
  return area_mm2_ * energy_->logic_leakage_per_mm2();
}

Watts SystolicMxu::peak_dynamic_power(ir::DType dtype) const {
  return macs_per_cycle() * energy_->digital_mac(dtype) *
         energy_->node().nominal_clock;
}

Watts SystolicMxu::idle_power(ir::DType dtype) const {
  return peak_dynamic_power(dtype) * tech::cal::kDigitalIdleActivity;
}

void SystolicMxu::fill_energy(const GemmWorkload& w, MxuCost& cost) const {
  const Joules mac = energy_->digital_mac(w.dtype);
  const Joules bubble = energy_->digital_bubble_slot(w.dtype);
  const double bubble_slots =
      std::max(0.0, cost.occupied_mac_slots - cost.useful_macs);
  cost.busy_energy = cost.useful_macs * mac + bubble_slots * bubble +
                     cost.stationary_bytes_loaded *
                         energy_->digital_weight_load_per_byte();
}

MxuCost SystolicMxu::evaluate_weight_stationary(const GemmWorkload& w) const {
  const double bytes_per_elem = ir::dtype_bytes(w.dtype);
  const double k_tiles =
      static_cast<double>(ceil_div<std::int64_t>(w.k, spec_.rows));
  const double n_tiles =
      static_cast<double>(ceil_div<std::int64_t>(w.n, spec_.cols));
  const double tiles = k_tiles * n_tiles;

  // Per-tile: serialized weight fill (rows cycles per byte-plane) + the m
  // input rows streaming through.  Ramp once per instance.
  const double weight_fill =
      spec_.rows * bytes_per_elem / tech::cal::kSystolicWeightRowsPerCycle;
  const double ramp = spec_.rows + spec_.cols - 2.0;
  const double cycles_per_instance =
      tiles * (weight_fill + static_cast<double>(w.m)) + ramp;

  MxuCost cost;
  cost.busy_cycles = static_cast<double>(w.instances) * cycles_per_instance;
  cost.useful_macs = static_cast<double>(w.instances) * w.m *
                     static_cast<double>(w.k) * w.n;
  cost.occupied_mac_slots = cost.busy_cycles * macs_per_cycle();
  cost.stationary_bytes_loaded = static_cast<double>(w.instances) * tiles *
                                 spec_.rows * spec_.cols * bytes_per_elem;
  fill_energy(w, cost);
  return cost;
}

MxuCost SystolicMxu::evaluate_output_stationary(const GemmWorkload& w) const {
  const double bytes_per_elem = ir::dtype_bytes(w.dtype);
  // Outputs stay in the PEs: the array holds an m x n output tile of
  // rows x cols results; inputs and weights both stream for k cycles per
  // tile (at byte-plane granularity), then the accumulated outputs drain.
  const double m_tiles =
      static_cast<double>(ceil_div<std::int64_t>(w.m, spec_.rows));
  const double n_tiles =
      static_cast<double>(ceil_div<std::int64_t>(w.n, spec_.cols));
  const double tiles = m_tiles * n_tiles;
  const double stream = static_cast<double>(w.k) * bytes_per_elem;
  const double drain = spec_.cols;  // results shift out column-wise
  const double ramp = spec_.rows + spec_.cols - 2.0;
  const double cycles_per_instance = tiles * (stream + drain) + ramp;

  MxuCost cost;
  cost.busy_cycles = static_cast<double>(w.instances) * cycles_per_instance;
  cost.useful_macs = static_cast<double>(w.instances) * w.m *
                     static_cast<double>(w.k) * w.n;
  cost.occupied_mac_slots = cost.busy_cycles * macs_per_cycle();
  // Weights re-stream once per M-tile row of output tiles.
  cost.stationary_bytes_loaded = static_cast<double>(w.instances) * m_tiles *
                                 static_cast<double>(w.k) * w.n *
                                 bytes_per_elem;
  fill_energy(w, cost);
  return cost;
}

MxuCost SystolicMxu::evaluate(const GemmWorkload& w) const {
  CIMTPU_CHECK_MSG(w.m > 0 && w.k > 0 && w.n > 0 && w.instances > 0,
                   "invalid GEMM workload m=" << w.m << " k=" << w.k
                                              << " n=" << w.n);
  return spec_.dataflow == Dataflow::kWeightStationary
             ? evaluate_weight_stationary(w)
             : evaluate_output_stationary(w);
}

}  // namespace cimtpu::systolic
