#pragma once
// Abstract matrix multiply unit (MXU).
//
// Both the baseline digital systolic array and the CIM-MXU implement this
// interface.  `evaluate` costs a (possibly batched) GEMM assigned to ONE
// unit; distributing an operator across the TensorCore's multiple MXUs is
// the mapping engine's job.

#include <memory>
#include <string>

#include "common/units.h"
#include "ir/dtype.h"
#include "tech/area_model.h"
#include "tech/energy_model.h"

namespace cimtpu::systolic {

/// A batched GEMM as seen by one matrix unit: `instances` independent
/// [m, k] x [k, n] products, each with its own stationary operand.
struct GemmWorkload {
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n = 0;
  std::int64_t instances = 1;
  ir::DType dtype = ir::DType::kInt8;
};

/// Cost of running a GemmWorkload to completion on one matrix unit.
struct MxuCost {
  Cycles busy_cycles = 0;        ///< cycles the unit is architecturally busy
  double useful_macs = 0;        ///< true (unpadded) MAC count
  double occupied_mac_slots = 0; ///< busy_cycles * macs_per_cycle
  Bytes stationary_bytes_loaded = 0;  ///< weight/K/V bytes ingested (padded)
  Joules busy_energy = 0;        ///< MAC + bubble + weight-ingest energy

  /// Utilization of the array while busy.
  double utilization() const {
    return occupied_mac_slots > 0 ? useful_macs / occupied_mac_slots : 0.0;
  }
};

class MatrixUnit {
 public:
  virtual ~MatrixUnit() = default;

  virtual std::string name() const = 0;

  /// Peak MAC throughput of this unit.
  virtual double macs_per_cycle() const = 0;

  /// Rate at which this unit can ingest stationary-operand (weight) bytes,
  /// in bytes per cycle.  Bounds GEMV throughput: a weight-stationary unit
  /// cannot compute faster than it can swap weights.
  virtual double weight_ingest_bytes_per_cycle() const = 0;

  /// True when weight ingest overlaps compute (CIM dedicated weight I/O);
  /// false when loading stalls the array (digital systolic).
  virtual bool overlapped_weight_load() const = 0;

  /// Silicon area of the unit.
  virtual SquareMm area() const = 0;

  /// Leakage power (always burned).
  virtual Watts leakage_power() const = 0;

  /// Dynamic power at 100% utilization for `dtype`.
  virtual Watts peak_dynamic_power(ir::DType dtype) const = 0;

  /// Dynamic power burned while the unit is architecturally idle.
  virtual Watts idle_power(ir::DType dtype) const = 0;

  /// Costs the given workload on this unit.
  virtual MxuCost evaluate(const GemmWorkload& workload) const = 0;

  // --- Derived figures of merit (Table II) -----------------------------------
  /// Peak throughput in ops/s at `clock`.
  double peak_ops_per_second(Hertz clock) const {
    return macs_per_cycle() * 2.0 * clock;
  }
  /// TOPS/W at full utilization (dynamic power, matching post-P&R power
  /// reports at nominal activity; leakage is reported separately).
  double tops_per_watt(ir::DType dtype, Hertz clock) const {
    return peak_ops_per_second(clock) / 1e12 / peak_dynamic_power(dtype);
  }
  /// TOPS/mm² at `clock`.
  double tops_per_mm2(Hertz clock) const {
    return peak_ops_per_second(clock) / 1e12 / area();
  }
};

using MatrixUnitPtr = std::unique_ptr<MatrixUnit>;

}  // namespace cimtpu::systolic
