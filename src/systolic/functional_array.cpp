#include "systolic/functional_array.h"

#include "common/status.h"

namespace cimtpu::systolic {
namespace {

struct InputToken {
  std::int8_t value = 0;
  std::int32_t id = -1;  ///< input-row index; -1 = bubble
};

struct PsumToken {
  std::int64_t value = 0;
  std::int32_t id = -1;
};

}  // namespace

FunctionalSystolicArray::FunctionalSystolicArray(int rows, int cols)
    : rows_(rows), cols_(cols) {
  CIMTPU_CONFIG_CHECK(rows > 0 && cols > 0,
                      "functional array dims must be positive");
}

std::vector<std::int32_t> FunctionalSystolicArray::reference(
    const std::vector<std::int8_t>& a, const std::vector<std::int8_t>& w,
    int m, int k, int n) {
  CIMTPU_CHECK(a.size() == static_cast<std::size_t>(m) * k);
  CIMTPU_CHECK(w.size() == static_cast<std::size_t>(k) * n);
  std::vector<std::int32_t> out(static_cast<std::size_t>(m) * n, 0);
  for (int i = 0; i < m; ++i) {
    for (int c = 0; c < n; ++c) {
      std::int32_t acc = 0;
      for (int r = 0; r < k; ++r) {
        acc += static_cast<std::int32_t>(a[static_cast<std::size_t>(i) * k + r]) *
               static_cast<std::int32_t>(w[static_cast<std::size_t>(r) * n + c]);
      }
      out[static_cast<std::size_t>(i) * n + c] = acc;
    }
  }
  return out;
}

FunctionalSystolicArray::RunResult FunctionalSystolicArray::run(
    const std::vector<std::int8_t>& a, const std::vector<std::int8_t>& w,
    int m) const {
  CIMTPU_CHECK_MSG(m > 0, "m must be positive");
  CIMTPU_CHECK_MSG(a.size() == static_cast<std::size_t>(m) * rows_,
                   "input size " << a.size() << " != m*rows");
  CIMTPU_CHECK_MSG(w.size() == static_cast<std::size_t>(rows_) * cols_,
                   "weight size " << w.size() << " != rows*cols");

  RunResult result;
  result.output.assign(static_cast<std::size_t>(m) * cols_, 0);

  auto index = [this](int r, int c) {
    return static_cast<std::size_t>(r) * cols_ + c;
  };

  // --- Phase 1: weight fill through the array (serialized; the vertical
  // datapath is busy shifting weights, so no compute happens).
  std::vector<std::int8_t> weight_reg(index(rows_ - 1, cols_ - 1) + 1, 0);
  for (int t = 0; t < rows_; ++t) {
    for (int r = rows_ - 1; r >= 1; --r) {
      for (int c = 0; c < cols_; ++c) {
        weight_reg[index(r, c)] = weight_reg[index(r - 1, c)];
      }
    }
    // Bottom-most weight row enters first so it lands deepest.
    const int source_row = rows_ - 1 - t;
    for (int c = 0; c < cols_; ++c) {
      weight_reg[index(0, c)] = w[index(source_row, c)];
    }
  }
  result.weight_load_cycles = rows_;

  // --- Phase 2: skewed input streaming with partial sums rippling down.
  std::vector<InputToken> in_reg(weight_reg.size());
  std::vector<PsumToken> ps_reg(weight_reg.size());
  std::vector<InputToken> next_in(weight_reg.size());
  std::vector<PsumToken> next_ps(weight_reg.size());

  long long collected = 0;
  const long long expected = static_cast<long long>(m) * cols_;
  long long stream_cycles = 0;
  // Upper bound guards against bugs hanging the loop.
  const long long bound = 4LL * (rows_ + cols_ + m) + 16;

  for (long long t = 0; collected < expected; ++t) {
    CIMTPU_CHECK_MSG(t < bound, "functional array failed to drain");
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        // Input: injected at the left edge with skew (row r lags r cycles),
        // otherwise shifted from the left neighbour.
        InputToken input;
        if (c == 0) {
          const long long i = t - r;
          if (i >= 0 && i < m) {
            input.value = a[static_cast<std::size_t>(i) * rows_ + r];
            input.id = static_cast<std::int32_t>(i);
          }
        } else {
          input = in_reg[index(r, c - 1)];
        }
        next_in[index(r, c)] = input;

        // Partial sum: zero enters the top row; otherwise the value the PE
        // above produced last cycle.
        PsumToken psum;
        if (r == 0) {
          psum.value = 0;
          psum.id = input.id;
        } else {
          psum = ps_reg[index(r - 1, c)];
        }
        if (input.id >= 0) {
          CIMTPU_DCHECK(psum.id == input.id);
          psum.value += static_cast<std::int64_t>(weight_reg[index(r, c)]) *
                        input.value;
          psum.id = input.id;
        }
        next_ps[index(r, c)] = psum;

        // Completed partial sums exit at the bottom row.
        if (r == rows_ - 1 && psum.id >= 0) {
          result.output[static_cast<std::size_t>(psum.id) * cols_ + c] =
              static_cast<std::int32_t>(psum.value);
          ++collected;
        }
      }
    }
    in_reg.swap(next_in);
    ps_reg.swap(next_ps);
    stream_cycles = t + 1;
  }

  result.total_cycles = result.weight_load_cycles + stream_cycles;
  return result;
}

}  // namespace cimtpu::systolic
