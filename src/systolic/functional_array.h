#pragma once
// Cycle-accurate functional model of a weight-stationary systolic array.
//
// This simulates the PE grid register-by-register, cycle-by-cycle: weights
// shift in through the array (the vertical datapath is shared with partial
// sums, so loading stalls compute), then skewed input rows stream through
// while partial sums ripple down the columns.  It exists to validate the
// analytic cost model: for a single-tile GEMM the observed cycle count must
// equal SCALE-Sim's closed form
//     2*R + C + m - 2
// and the outputs must be bit-exact INT8 x INT8 -> INT32 GEMM results.
// Tests cross-check both against SystolicMxu::evaluate.

#include <cstdint>
#include <vector>

namespace cimtpu::systolic {

class FunctionalSystolicArray {
 public:
  FunctionalSystolicArray(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  struct RunResult {
    std::vector<std::int32_t> output;  ///< m x cols, row-major
    long long total_cycles = 0;        ///< weight load + stream + drain
    long long weight_load_cycles = 0;  ///< serialized weight-fill portion
  };

  /// Executes one [m, rows] x [rows, cols] weight-stationary GEMM.
  /// `a` is m x rows row-major; `w` is rows x cols row-major.
  RunResult run(const std::vector<std::int8_t>& a,
                const std::vector<std::int8_t>& w, int m) const;

  /// Reference GEMM for validation.
  static std::vector<std::int32_t> reference(
      const std::vector<std::int8_t>& a, const std::vector<std::int8_t>& w,
      int m, int k, int n);

  /// The closed-form cycle count the analytic model uses for one tile.
  long long analytic_cycles(int m) const {
    return 2LL * rows_ + cols_ + m - 2;
  }

 private:
  int rows_;
  int cols_;
};

}  // namespace cimtpu::systolic
