#pragma once
// Multi-TPU inference: pipeline parallelism across chips in a ring (paper
// Sec. V-B: up to 4-way pipeline parallelism over the two ICI links per
// chip) plus Megatron-style tensor parallelism (Sec. III-C cites [28]).

#include <cstdint>

#include "arch/tpu_config.h"
#include "sim/workload_runner.h"

namespace cimtpu::parallel {

/// Throughput/energy of a pipelined LLM deployment.
struct LlmPipelineResult {
  int chips = 1;
  Seconds request_latency = 0;       ///< one batch through all stages
  Seconds bottleneck_stage_time = 0; ///< steady-state initiation interval
  double requests_per_second = 0;
  double tokens_per_second = 0;      ///< generated tokens/s (all sequences)
  Joules mxu_energy_per_request = 0;
  Joules total_energy_per_request = 0;
  Joules ici_energy_per_request = 0;
};

/// Throughput/energy of a pipelined DiT deployment.
struct DitPipelineResult {
  int chips = 1;
  Seconds request_latency = 0;
  Seconds bottleneck_stage_time = 0;
  double images_per_second = 0;
  Joules mxu_energy_per_image = 0;
  Joules total_energy_per_image = 0;
  Joules ici_energy_per_request = 0;
};

/// Evaluates LLM inference with the model's layers split evenly over
/// `chips` pipeline stages connected in a ring.
LlmPipelineResult evaluate_llm_pipeline(const arch::TpuChipConfig& chip_config,
                                        const sim::LlmScenario& scenario,
                                        int chips);

/// Evaluates a DiT forward pass over `chips` pipeline stages.
DitPipelineResult evaluate_dit_pipeline(const arch::TpuChipConfig& chip_config,
                                        const sim::DitScenario& scenario,
                                        int chips);

// --- Tensor parallelism ------------------------------------------------------

/// Shards a Transformer config across `ways` chips Megatron-style: QKV and
/// FFN1 column-parallel (heads and d_ff split), proj and FFN2 row-parallel.
/// Throws ConfigError when heads or d_ff do not divide.
models::TransformerConfig shard_tensor_parallel(
    const models::TransformerConfig& config, int ways);

/// Bytes all-reduced per layer per forward pass: two all-reduces of the
/// [rows, d_model] activation (after attention and after the FFN).
Bytes tensor_parallel_allreduce_bytes(const models::TransformerConfig& config,
                                      std::int64_t rows);

/// LLM inference with `ways`-way tensor parallelism (layers replicated,
/// matrices sharded, two ring all-reduces per layer).
struct LlmTensorParallelResult {
  int ways = 1;
  Seconds latency = 0;            ///< prefill + decode, communication included
  Seconds communication_time = 0; ///< total all-reduce time
  Joules mxu_energy = 0;          ///< summed over all chips
  Joules total_energy = 0;
};

LlmTensorParallelResult evaluate_llm_tensor_parallel(
    const arch::TpuChipConfig& chip_config, const sim::LlmScenario& scenario,
    int ways);

}  // namespace cimtpu::parallel
