#include "parallel/multi_chip.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"

namespace cimtpu::parallel {
namespace {

/// Per-request activation bytes crossing one stage boundary: the prompt
/// activations once (prefill handoff) plus one token row per decode step.
Bytes llm_boundary_bytes(const sim::LlmScenario& scenario) {
  const double elem = ir::dtype_bytes(scenario.model.dtype);
  const Bytes prefill = static_cast<double>(scenario.batch) *
                        scenario.input_len * scenario.model.d_model * elem;
  const Bytes decode = static_cast<double>(scenario.batch) *
                       scenario.output_len * scenario.model.d_model * elem;
  return prefill + decode;
}

}  // namespace

LlmPipelineResult evaluate_llm_pipeline(const arch::TpuChipConfig& chip_config,
                                        const sim::LlmScenario& scenario,
                                        int chips) {
  CIMTPU_CONFIG_CHECK(chips >= 1, "pipeline needs >= 1 chip");
  CIMTPU_CONFIG_CHECK(scenario.model.num_layers >= chips,
                      "fewer layers than pipeline stages");

  arch::TpuChip chip(chip_config);
  sim::Simulator simulator(chip);

  // Layers split as evenly as possible; the bottleneck stage has the
  // ceiling share.
  const std::int64_t bottleneck_layers =
      ceil_div<std::int64_t>(scenario.model.num_layers, chips);

  sim::LlmScenario stage_scenario = scenario;
  stage_scenario.model.num_layers = bottleneck_layers;
  const sim::LlmRunResult bottleneck =
      sim::run_llm_inference(simulator, stage_scenario);

  // Whole-model result for latency/energy (all stages combined).
  const sim::LlmRunResult full = sim::run_llm_inference(simulator, scenario);

  LlmPipelineResult result;
  result.chips = chips;

  // Inter-stage activation handoffs over ICI (ring neighbours).
  const Bytes boundary = llm_boundary_bytes(scenario);
  const Seconds transfer_per_boundary = chip.ici().p2p_time(boundary);
  const int boundaries = chips - 1;

  result.request_latency =
      full.total.latency + boundaries * transfer_per_boundary;
  result.bottleneck_stage_time =
      bottleneck.total.latency + (boundaries > 0 ? transfer_per_boundary : 0.0);
  result.requests_per_second = 1.0 / result.bottleneck_stage_time;
  result.tokens_per_second = result.requests_per_second *
                             static_cast<double>(scenario.batch) *
                             scenario.output_len;
  result.ici_energy_per_request =
      boundaries * chip.ici().p2p_energy(boundary);
  result.mxu_energy_per_request = full.total.mxu_energy();
  result.total_energy_per_request =
      full.total.total_energy() + result.ici_energy_per_request;
  return result;
}

DitPipelineResult evaluate_dit_pipeline(const arch::TpuChipConfig& chip_config,
                                        const sim::DitScenario& scenario,
                                        int chips) {
  CIMTPU_CONFIG_CHECK(chips >= 1, "pipeline needs >= 1 chip");
  CIMTPU_CONFIG_CHECK(scenario.model.num_layers >= chips,
                      "fewer DiT blocks than pipeline stages");

  arch::TpuChip chip(chip_config);
  sim::Simulator simulator(chip);

  const std::int64_t bottleneck_layers =
      ceil_div<std::int64_t>(scenario.model.num_layers, chips);
  sim::DitScenario stage_scenario = scenario;
  stage_scenario.model.num_layers = bottleneck_layers;

  const sim::GraphResult bottleneck =
      sim::run_dit_inference(simulator, stage_scenario);
  const sim::GraphResult full = sim::run_dit_inference(simulator, scenario);

  DitPipelineResult result;
  result.chips = chips;

  const Bytes boundary = static_cast<double>(scenario.batch) *
                         scenario.geometry.tokens() *
                         scenario.model.d_model *
                         ir::dtype_bytes(scenario.model.dtype);
  const Seconds transfer = chip.ici().p2p_time(boundary);
  const int boundaries = chips - 1;

  result.request_latency = full.latency + boundaries * transfer;
  result.bottleneck_stage_time =
      bottleneck.latency + (boundaries > 0 ? transfer : 0.0);
  result.images_per_second = static_cast<double>(scenario.batch) /
                             result.bottleneck_stage_time;
  result.ici_energy_per_request = boundaries * chip.ici().p2p_energy(boundary);
  result.mxu_energy_per_image =
      full.mxu_energy() / static_cast<double>(scenario.batch);
  result.total_energy_per_image =
      (full.total_energy() + result.ici_energy_per_request) /
      static_cast<double>(scenario.batch);
  return result;
}

models::TransformerConfig shard_tensor_parallel(
    const models::TransformerConfig& config, int ways) {
  CIMTPU_CONFIG_CHECK(ways >= 1, "tensor parallel ways must be >= 1");
  CIMTPU_CONFIG_CHECK(config.num_heads % ways == 0,
                      "heads (" << config.num_heads
                                << ") not divisible by tp ways " << ways);
  CIMTPU_CONFIG_CHECK(config.d_ff % ways == 0,
                      "d_ff (" << config.d_ff << ") not divisible by tp ways "
                               << ways);
  models::TransformerConfig shard = config;
  shard.name = config.name + "-tp" + std::to_string(ways);
  shard.num_heads = config.num_heads / ways;
  // d_model stays (row-parallel inputs are full-width); the sharded QKV /
  // FFN widths follow from heads and d_ff.
  shard.d_ff = config.d_ff / ways;
  return shard;
}

Bytes tensor_parallel_allreduce_bytes(const models::TransformerConfig& config,
                                      std::int64_t rows) {
  return 2.0 * static_cast<double>(rows) * config.d_model *
         ir::dtype_bytes(config.dtype);
}

LlmTensorParallelResult evaluate_llm_tensor_parallel(
    const arch::TpuChipConfig& chip_config, const sim::LlmScenario& scenario,
    int ways) {
  arch::TpuChip chip(chip_config);
  sim::Simulator simulator(chip);

  sim::LlmScenario sharded = scenario;
  sharded.model = shard_tensor_parallel(scenario.model, ways);

  const sim::LlmRunResult run = sim::run_llm_inference(simulator, sharded);

  LlmTensorParallelResult result;
  result.ways = ways;

  // Two ring all-reduces per layer: over [batch*input_len, d_model] during
  // prefill and [batch, d_model] per decode step.
  Seconds comm = 0;
  if (ways > 1) {
    const Bytes prefill_bytes = tensor_parallel_allreduce_bytes(
        scenario.model, scenario.batch * scenario.input_len);
    const Bytes decode_bytes =
        tensor_parallel_allreduce_bytes(scenario.model, scenario.batch);
    comm = scenario.model.num_layers *
           (chip.ici().all_reduce_time(prefill_bytes, ways) +
            static_cast<double>(scenario.output_len) *
                chip.ici().all_reduce_time(decode_bytes, ways));
  }
  result.communication_time = comm;
  result.latency = run.total.latency + comm;
  result.mxu_energy = run.total.mxu_energy() * ways;
  result.total_energy = run.total.total_energy() * ways;
  return result;
}

}  // namespace cimtpu::parallel
