#include "parallel/capacity.h"

#include <cmath>

#include "common/status.h"

namespace cimtpu::parallel {

CapacityPlan plan_capacity(const arch::TpuChipConfig& chip_config,
                           const models::TransformerConfig& model,
                           std::int64_t batch, std::int64_t max_seq_len,
                           double reserve_fraction) {
  model.validate();
  CIMTPU_CONFIG_CHECK(batch > 0 && max_seq_len > 0,
                      "capacity planning needs positive batch/seq");
  CIMTPU_CONFIG_CHECK(reserve_fraction >= 0.0 && reserve_fraction < 1.0,
                      "reserve_fraction must be in [0, 1)");

  CapacityPlan plan;
  plan.weight_bytes = model.stack_weight_bytes();
  if (model.vocab_size > 0) {
    // Embedding table + tied LM head.
    plan.weight_bytes += static_cast<double>(model.vocab_size) *
                         model.d_model * ir::dtype_bytes(model.dtype);
  }
  plan.kv_bytes = models::kv_cache_bytes_per_layer(model, batch, max_seq_len) *
                  static_cast<double>(model.num_layers);
  plan.per_chip_available =
      chip_config.memory.hbm.capacity * (1.0 - reserve_fraction);

  const Bytes total = plan.weight_bytes + plan.kv_bytes;
  plan.min_pipeline_stages = static_cast<int>(
      std::ceil(total / plan.per_chip_available));
  if (plan.min_pipeline_stages < 1) plan.min_pipeline_stages = 1;
  CIMTPU_CONFIG_CHECK(
      plan.min_pipeline_stages <= model.num_layers,
      "model '" << model.name << "' needs " << plan.min_pipeline_stages
                << " chips but has only " << model.num_layers
                << " layers to split");
  return plan;
}

}  // namespace cimtpu::parallel
