#pragma once
// Deployment capacity planning: how many chips does a model need?
//
// GPT3-30B INT8 weights (29.6 GB) exceed one TPUv4i's 8 GB of HBM — the
// reason the paper's multi-device section exists.  This planner computes
// the minimum pipeline depth from weight + KV-cache footprints and flags
// infeasible single-chip deployments before the simulator is asked to
// produce meaningless numbers for them.

#include <cstdint>

#include "arch/tpu_config.h"
#include "models/transformer.h"

namespace cimtpu::parallel {

struct CapacityPlan {
  Bytes weight_bytes = 0;        ///< whole-stack weights (+ embeddings)
  Bytes kv_bytes = 0;            ///< whole-stack KV cache at max length
  Bytes per_chip_available = 0;  ///< HBM minus working-set reserve
  int min_pipeline_stages = 1;   ///< chips needed to hold weights + KV
  bool fits_single_chip() const { return min_pipeline_stages <= 1; }
};

/// Plans capacity for serving `model` at the given batch and maximum
/// sequence length on chips described by `chip_config`.  A fraction of HBM
/// is reserved for activations/double buffers (`reserve_fraction`).
CapacityPlan plan_capacity(const arch::TpuChipConfig& chip_config,
                           const models::TransformerConfig& model,
                           std::int64_t batch, std::int64_t max_seq_len,
                           double reserve_fraction = 0.10);

}  // namespace cimtpu::parallel
