#pragma once
// Operator intermediate representation.
//
// A workload is an ordered list of `Op`s (see graph.h).  Each op carries the
// shape information the cost models need: GEMM dimensions, operand
// residency, and the reporting group it belongs to (the paper's Fig. 6
// breaks layers down into "QKV Gen", "Attention", "Proj.", "FFN1", "FFN2",
// "LayerNorm", "GeLU" and "Conditioning" bars).

#include <cstdint>
#include <string>

#include "common/units.h"
#include "ir/dtype.h"

namespace cimtpu::ir {

/// Where an operand stream originates/terminates.  Drives the memory-cost
/// model: HBM-resident tensors stream through CMEM and VMEM; CMEM-resident
/// tensors (e.g. the KV cache when it fits) skip the HBM leg.
enum class Residency : std::uint8_t { kHbm, kCmem, kVmem };

std::string residency_name(Residency residency);

/// Operator taxonomy.  Matrix ops run on the MXUs; the rest run on the VPU.
enum class OpKind : std::uint8_t {
  kMatmul,          ///< (batched) GEMM / GEMV
  kSoftmax,         ///< row-wise softmax (online-normalizer algorithm)
  kLayerNorm,       ///< row-wise layer normalization
  kGelu,            ///< elementwise GeLU (tanh approximation)
  kElementwise,     ///< generic elementwise map (add / mul / shift&scale)
  kEmbeddingLookup, ///< gather rows of an embedding table
  kDataMovement,    ///< reshape / transpose / patchify handled by DMA+VPU
};

std::string op_kind_name(OpKind kind);

/// One operator instance.
///
/// For kMatmul the computation is `instances` independent GEMMs of shape
/// [m, k] x [k, n].  `instances > 1` with `stationary_shared == false`
/// models attention, where every (batch, head) pair multiplies by its own
/// K / V matrix so the stationary operand cannot be amortized across the
/// batch — the key reason decode GEMVs starve a weight-stationary systolic
/// array (paper Sec. IV-B).
struct Op {
  OpKind kind = OpKind::kMatmul;
  std::string name;   ///< unique-ish label, e.g. "qkv_proj"
  std::string group;  ///< reporting bar, e.g. "QKV Gen"
  DType dtype = DType::kInt8;

  // --- kMatmul fields --------------------------------------------------------
  std::int64_t m = 0;          ///< rows of the moving operand
  std::int64_t k = 0;          ///< contraction dimension
  std::int64_t n = 0;          ///< output columns (stationary operand width)
  std::int64_t instances = 1;  ///< independent GEMMs with distinct stationary operands
  bool stationary_shared = true;  ///< stationary operand reused across `m` rows of every instance
  Residency stationary_residency = Residency::kHbm;  ///< weights: HBM; KV cache: CMEM
  Residency moving_residency = Residency::kVmem;
  Residency output_residency = Residency::kVmem;

  // --- Vector-op fields ------------------------------------------------------
  std::int64_t rows = 0;          ///< independent rows (softmax / layernorm)
  std::int64_t cols = 0;          ///< row width
  std::int64_t elems = 0;         ///< total elements (gelu / elementwise / movement)
  double ops_per_element = 1.0;   ///< arithmetic ops per element (elementwise)

  // --- Derived quantities ----------------------------------------------------
  /// Total multiply-accumulate count (matmul ops only).
  double macs() const;
  /// Total arithmetic operations (2 * macs for matmul; per-kind for others).
  double flops() const;
  /// Bytes of the moving operand (activations) read per execution.
  Bytes moving_bytes() const;
  /// Bytes of the stationary operand (weights / K / V) read per execution.
  Bytes stationary_bytes() const;
  /// Bytes written to the output.
  Bytes output_bytes() const;
  /// True when the op executes on a matrix unit.
  bool is_matmul() const { return kind == OpKind::kMatmul; }

  /// Throws ConfigError when required fields for `kind` are missing/invalid.
  void validate() const;
};

/// Convenience constructors -------------------------------------------------

/// A standard weight GEMM: [m, k] x [k, n] with HBM-resident weights shared
/// across the batch (QKV projections, FFNs, output projections).
Op make_weight_gemm(std::string name, std::string group, std::int64_t m,
                    std::int64_t k, std::int64_t n, DType dtype);

/// An attention GEMM: `instances` independent [m, k] x [k, n] products whose
/// stationary operands live in the KV cache.
Op make_attention_gemm(std::string name, std::string group,
                       std::int64_t instances, std::int64_t m, std::int64_t k,
                       std::int64_t n, DType dtype, Residency kv_residency);

Op make_softmax(std::string name, std::string group, std::int64_t rows,
                std::int64_t cols, DType dtype);
Op make_layer_norm(std::string name, std::string group, std::int64_t rows,
                   std::int64_t cols, DType dtype);
Op make_gelu(std::string name, std::string group, std::int64_t elems,
             DType dtype);
Op make_elementwise(std::string name, std::string group, std::int64_t elems,
                    double ops_per_element, DType dtype);
Op make_embedding_lookup(std::string name, std::string group,
                         std::int64_t tokens, std::int64_t width, DType dtype);
Op make_data_movement(std::string name, std::string group, std::int64_t elems,
                      DType dtype);

}  // namespace cimtpu::ir
