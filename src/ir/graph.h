#pragma once
// Workload graphs: ordered operator lists with reporting structure.
//
// The simulator executes ops sequentially (TPU layers are dependency
// chains); parallelism inside an op is the MXU/VPU's job, and overlap of
// compute with memory is handled by the per-op double-buffering model.

#include <string>
#include <vector>

#include "ir/op.h"

namespace cimtpu::ir {

/// An ordered operator list representing one logical unit of work (a
/// Transformer layer, a DiT block, a prediction head...).  `repeat` lets a
/// workload express "48 identical layers" without duplicating storage.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends an op (validated) and returns its index.
  std::size_t add(Op op);

  /// Appends all ops of `other`, preserving order.
  void append(const Graph& other);

  const std::vector<Op>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  const Op& op(std::size_t index) const;

  /// Sum of MACs over all matmul ops.
  double total_macs() const;
  /// Sum of flops over all ops.
  double total_flops() const;
  /// Total stationary (weight/KV) bytes touched.
  Bytes total_stationary_bytes() const;

  /// Distinct group labels in first-appearance order.
  std::vector<std::string> groups() const;

 private:
  std::string name_;
  std::vector<Op> ops_;
};

}  // namespace cimtpu::ir
