#include "ir/graph.h"

#include <algorithm>

#include "common/status.h"

namespace cimtpu::ir {

std::size_t Graph::add(Op op) {
  op.validate();
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void Graph::append(const Graph& other) {
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
}

const Op& Graph::op(std::size_t index) const {
  CIMTPU_CHECK_MSG(index < ops_.size(),
                   "op index " << index << " out of range (" << ops_.size()
                               << ")");
  return ops_[index];
}

double Graph::total_macs() const {
  double total = 0.0;
  for (const Op& op : ops_) total += op.macs();
  return total;
}

double Graph::total_flops() const {
  double total = 0.0;
  for (const Op& op : ops_) total += op.flops();
  return total;
}

Bytes Graph::total_stationary_bytes() const {
  Bytes total = 0.0;
  for (const Op& op : ops_) total += op.stationary_bytes();
  return total;
}

std::vector<std::string> Graph::groups() const {
  std::vector<std::string> result;
  for (const Op& op : ops_) {
    if (std::find(result.begin(), result.end(), op.group) == result.end()) {
      result.push_back(op.group);
    }
  }
  return result;
}

}  // namespace cimtpu::ir
