#include "ir/op.h"

namespace cimtpu::ir {

std::string residency_name(Residency residency) {
  switch (residency) {
    case Residency::kHbm:
      return "HBM";
    case Residency::kCmem:
      return "CMEM";
    case Residency::kVmem:
      return "VMEM";
  }
  return "?";
}

std::string op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kMatmul:
      return "matmul";
    case OpKind::kSoftmax:
      return "softmax";
    case OpKind::kLayerNorm:
      return "layernorm";
    case OpKind::kGelu:
      return "gelu";
    case OpKind::kElementwise:
      return "elementwise";
    case OpKind::kEmbeddingLookup:
      return "embedding";
    case OpKind::kDataMovement:
      return "data_movement";
  }
  return "?";
}

double Op::macs() const {
  if (kind != OpKind::kMatmul) return 0.0;
  return static_cast<double>(instances) * static_cast<double>(m) *
         static_cast<double>(k) * static_cast<double>(n);
}

double Op::flops() const {
  switch (kind) {
    case OpKind::kMatmul:
      return 2.0 * macs();
    case OpKind::kSoftmax:
      // Online normalizer (Milakov & Gimelshein): one fused max+sum pass
      // and one normalize pass.  Each pass evaluates exp() (range-reduced
      // polynomial, ~4 ops) plus compare/accumulate or subtract/divide —
      // ~6 vector ops per element per pass.
      return 12.0 * static_cast<double>(rows) * static_cast<double>(cols);
    case OpKind::kLayerNorm:
      // mean + variance pass (~4 ops/elem) and normalize+affine (~4).
      return 8.0 * static_cast<double>(rows) * static_cast<double>(cols);
    case OpKind::kGelu:
      // tanh-approximated GeLU (as used by DiT): x^3 term, tanh poly,
      // blend — ~12 ops/elem on a vector unit.
      return 12.0 * static_cast<double>(elems);
    case OpKind::kElementwise:
      return ops_per_element * static_cast<double>(elems);
    case OpKind::kEmbeddingLookup:
      return 0.0;  // pure gather
    case OpKind::kDataMovement:
      return 0.0;
  }
  return 0.0;
}

Bytes Op::moving_bytes() const {
  const double element = dtype_bytes(dtype);
  switch (kind) {
    case OpKind::kMatmul:
      return static_cast<double>(instances) * static_cast<double>(m) *
             static_cast<double>(k) * element;
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
      return static_cast<double>(rows) * static_cast<double>(cols) * element;
    case OpKind::kGelu:
    case OpKind::kElementwise:
    case OpKind::kDataMovement:
      return static_cast<double>(elems) * element;
    case OpKind::kEmbeddingLookup:
      return static_cast<double>(rows) * static_cast<double>(cols) * element;
  }
  return 0.0;
}

Bytes Op::stationary_bytes() const {
  if (kind != OpKind::kMatmul) return 0.0;
  return static_cast<double>(instances) * static_cast<double>(k) *
         static_cast<double>(n) * dtype_bytes(dtype);
}

Bytes Op::output_bytes() const {
  const double element = dtype_bytes(dtype);
  switch (kind) {
    case OpKind::kMatmul:
      return static_cast<double>(instances) * static_cast<double>(m) *
             static_cast<double>(n) * element;
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
      return static_cast<double>(rows) * static_cast<double>(cols) * element;
    case OpKind::kGelu:
    case OpKind::kElementwise:
    case OpKind::kDataMovement:
      return static_cast<double>(elems) * element;
    case OpKind::kEmbeddingLookup:
      return static_cast<double>(rows) * static_cast<double>(cols) * element;
  }
  return 0.0;
}

void Op::validate() const {
  CIMTPU_CONFIG_CHECK(!name.empty(), "op has empty name");
  switch (kind) {
    case OpKind::kMatmul:
      CIMTPU_CONFIG_CHECK(m > 0 && k > 0 && n > 0 && instances > 0,
                          "matmul '" << name << "' has non-positive dims: m="
                                     << m << " k=" << k << " n=" << n
                                     << " instances=" << instances);
      break;
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
      CIMTPU_CONFIG_CHECK(rows > 0 && cols > 0,
                          "row-op '" << name << "' has non-positive dims");
      break;
    case OpKind::kGelu:
    case OpKind::kElementwise:
    case OpKind::kDataMovement:
      CIMTPU_CONFIG_CHECK(elems > 0,
                          "elementwise op '" << name << "' has no elements");
      break;
    case OpKind::kEmbeddingLookup:
      CIMTPU_CONFIG_CHECK(rows > 0 && cols > 0,
                          "embedding '" << name << "' has non-positive dims");
      break;
  }
}

Op make_weight_gemm(std::string name, std::string group, std::int64_t m,
                    std::int64_t k, std::int64_t n, DType dtype) {
  Op op;
  op.kind = OpKind::kMatmul;
  op.name = std::move(name);
  op.group = std::move(group);
  op.dtype = dtype;
  op.m = m;
  op.k = k;
  op.n = n;
  op.instances = 1;
  op.stationary_shared = true;
  op.stationary_residency = Residency::kHbm;
  op.validate();
  return op;
}

Op make_attention_gemm(std::string name, std::string group,
                       std::int64_t instances, std::int64_t m, std::int64_t k,
                       std::int64_t n, DType dtype, Residency kv_residency) {
  Op op;
  op.kind = OpKind::kMatmul;
  op.name = std::move(name);
  op.group = std::move(group);
  op.dtype = dtype;
  op.m = m;
  op.k = k;
  op.n = n;
  op.instances = instances;
  op.stationary_shared = false;
  op.stationary_residency = kv_residency;
  op.validate();
  return op;
}

Op make_softmax(std::string name, std::string group, std::int64_t rows,
                std::int64_t cols, DType dtype) {
  Op op;
  op.kind = OpKind::kSoftmax;
  op.name = std::move(name);
  op.group = std::move(group);
  op.dtype = dtype;
  op.rows = rows;
  op.cols = cols;
  op.validate();
  return op;
}

Op make_layer_norm(std::string name, std::string group, std::int64_t rows,
                   std::int64_t cols, DType dtype) {
  Op op;
  op.kind = OpKind::kLayerNorm;
  op.name = std::move(name);
  op.group = std::move(group);
  op.dtype = dtype;
  op.rows = rows;
  op.cols = cols;
  op.validate();
  return op;
}

Op make_gelu(std::string name, std::string group, std::int64_t elems,
             DType dtype) {
  Op op;
  op.kind = OpKind::kGelu;
  op.name = std::move(name);
  op.group = std::move(group);
  op.dtype = dtype;
  op.elems = elems;
  op.validate();
  return op;
}

Op make_elementwise(std::string name, std::string group, std::int64_t elems,
                    double ops_per_element, DType dtype) {
  Op op;
  op.kind = OpKind::kElementwise;
  op.name = std::move(name);
  op.group = std::move(group);
  op.dtype = dtype;
  op.elems = elems;
  op.ops_per_element = ops_per_element;
  op.validate();
  return op;
}

Op make_embedding_lookup(std::string name, std::string group,
                         std::int64_t tokens, std::int64_t width, DType dtype) {
  Op op;
  op.kind = OpKind::kEmbeddingLookup;
  op.name = std::move(name);
  op.group = std::move(group);
  op.dtype = dtype;
  op.rows = tokens;
  op.cols = width;
  op.validate();
  return op;
}

Op make_data_movement(std::string name, std::string group, std::int64_t elems,
                      DType dtype) {
  Op op;
  op.kind = OpKind::kDataMovement;
  op.name = std::move(name);
  op.group = std::move(group);
  op.dtype = dtype;
  op.elems = elems;
  op.validate();
  return op;
}

}  // namespace cimtpu::ir
