#pragma once
// Numeric datatypes supported by the modeled hardware.  TPUv4i's MXU and our
// CIM-MXU both execute INT8 and BF16 (paper Sec. III-B); FP32 appears only
// in VPU accumulation paths.  INT4 is an extension point: digital CIM
// macros are natively efficient at INT4 (e.g. 351 TOPS/W in the 7nm macro
// the paper cites [8]), so the library models it for what-if studies.

#include <cstdint>
#include <string>

#include "common/status.h"

namespace cimtpu::ir {

enum class DType : std::uint8_t { kInt4, kInt8, kBf16, kFp32 };

/// Storage size of one element.
constexpr double dtype_bytes(DType dtype) {
  switch (dtype) {
    case DType::kInt4:
      return 0.5;
    case DType::kInt8:
      return 1.0;
    case DType::kBf16:
      return 2.0;
    case DType::kFp32:
      return 4.0;
  }
  return 0.0;  // unreachable
}

inline std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kInt4:
      return "INT4";
    case DType::kInt8:
      return "INT8";
    case DType::kBf16:
      return "BF16";
    case DType::kFp32:
      return "FP32";
  }
  return "?";
}

inline DType dtype_from_name(const std::string& name) {
  if (name == "INT4" || name == "int4") return DType::kInt4;
  if (name == "INT8" || name == "int8") return DType::kInt8;
  if (name == "BF16" || name == "bf16") return DType::kBf16;
  if (name == "FP32" || name == "fp32") return DType::kFp32;
  throw ConfigError("unknown dtype: " + name);
}

}  // namespace cimtpu::ir
